#pragma once
// On-device motion-state estimation from raw IMU samples: a sliding-window
// classifier over linear-acceleration and rotation-rate energy. This is the
// component a real deployment would run on the sensor hub; its output gates
// the cache reuse policy.

#include "src/imu/trace.hpp"
#include "src/util/ring_buffer.hpp"

namespace apx {

/// Estimator thresholds. Defaults separate the generator's regimes with a
/// wide margin and match smartphone heuristics (stationary detection below
/// ~0.15 m/s^2 RMS deviation from gravity).
struct MotionEstimatorParams {
  std::size_t window = 32;            ///< samples in the sliding window
  float accel_minor_threshold = 0.20f;///< m/s^2 RMS: stationary -> minor
  float accel_major_threshold = 1.50f;///< m/s^2 RMS: minor -> major
  float gyro_minor_threshold = 0.05f; ///< rad/s RMS
  float gyro_major_threshold = 0.60f; ///< rad/s RMS
};

/// Sliding-window IMU motion classifier.
class MotionEstimator {
 public:
  explicit MotionEstimator(const MotionEstimatorParams& params = {});

  /// Feeds one sample.
  void add(const ImuSample& sample);

  /// Feeds a batch in order.
  void add_all(const std::vector<ImuSample>& samples);

  /// Current classification. With an empty window returns kMajor (the
  /// conservative answer: no evidence of stillness means don't relax reuse).
  MotionState estimate() const;

  /// RMS deviation of |accel| from gravity over the window (m/s^2).
  float accel_rms() const;

  /// RMS rotation rate over the window (rad/s).
  float gyro_rms() const;

  std::size_t window_fill() const noexcept { return accel_dev_.size(); }

 private:
  MotionEstimatorParams params_;
  RingBuffer<float> accel_dev_;  ///< | |a| - g | per sample
  RingBuffer<float> gyro_mag_;   ///< |w| per sample
};

}  // namespace apx

#pragma once
// Motion-gated reuse policy (DESIGN.md §5.4). The motion state modulates,
// never replaces, the approximate lookup:
//   stationary -> the scene cannot have changed: temporal fast-path allowed
//                 and the similarity threshold is relaxed;
//   minor      -> normal operation;
//   major      -> temporal reuse disabled (the previous frame's result is
//                 stale) and the similarity threshold tightened, because
//                 motion blur degrades features.

#include "src/imu/mobility.hpp"

namespace apx {

/// Per-frame reuse directives derived from the motion state.
struct GateDecision {
  bool allow_temporal_reuse = true;  ///< may inherit the last frame's result
  float threshold_scale = 1.0f;      ///< multiplies HknnParams::max_distance
};

/// Scales applied per state.
struct MotionGateParams {
  float stationary_scale = 1.25f;
  float minor_scale = 1.0f;
  float major_scale = 0.8f;
};

/// Maps a motion state to its reuse directives.
class MotionGate {
 public:
  explicit MotionGate(const MotionGateParams& params = {}) noexcept
      : params_(params) {}

  GateDecision decide(MotionState state) const noexcept;

 private:
  MotionGateParams params_;
};

}  // namespace apx

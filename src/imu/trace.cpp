#include "src/imu/trace.hpp"

#include <cmath>
#include <stdexcept>

namespace apx {
namespace {

constexpr float kGravity = 9.81f;

struct NoiseLevels {
  float accel_sigma;
  float gyro_sigma;
};

NoiseLevels levels_for(MotionState s) noexcept {
  switch (s) {
    case MotionState::kStationary: return {0.05f, 0.01f};
    case MotionState::kMinor: return {0.60f, 0.25f};
    case MotionState::kMajor: return {2.80f, 1.20f};
  }
  return {0.0f, 0.0f};
}

}  // namespace

ImuTraceGenerator::ImuTraceGenerator(const MobilityModel& mobility,
                                     double rate_hz, std::uint64_t seed)
    : mobility_(&mobility), rng_(seed) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("ImuTraceGenerator: rate_hz <= 0");
  }
  period_ = static_cast<SimDuration>(static_cast<double>(kSecond) / rate_hz);
  if (period_ <= 0) period_ = 1;
}

ImuSample ImuTraceGenerator::sample_at(SimTime t) {
  const NoiseLevels levels = levels_for(mobility_->state_at(t));
  ImuSample s;
  s.t = t;
  s.accel[0] = static_cast<float>(rng_.normal(0.0, levels.accel_sigma));
  s.accel[1] = static_cast<float>(rng_.normal(0.0, levels.accel_sigma));
  s.accel[2] =
      kGravity + static_cast<float>(rng_.normal(0.0, levels.accel_sigma));
  for (auto& g : s.gyro) {
    g = static_cast<float>(rng_.normal(0.0, levels.gyro_sigma));
  }
  return s;
}

std::vector<ImuSample> ImuTraceGenerator::samples_between(SimTime from,
                                                          SimTime to) {
  std::vector<ImuSample> out;
  if (next_t_ < from) next_t_ = from;
  while (next_t_ < to) {
    out.push_back(sample_at(next_t_));
    next_t_ += period_;
  }
  return out;
}

}  // namespace apx

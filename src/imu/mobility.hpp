#pragma once
// Device mobility model. Both the IMU trace generator and the video stream
// generator consume the SAME mobility timeline, so inertial readings and
// scene change share a common cause — the physical fact the poster's IMU
// heuristic exploits (DESIGN.md §4).

#include <vector>

#include "src/util/clock.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// Coarse device motion regimes (what the motion estimator classifies into).
enum class MotionState { kStationary = 0, kMinor = 1, kMajor = 2 };

/// Printable name ("stationary" / "minor" / "major").
const char* to_string(MotionState s) noexcept;

/// One homogeneous stretch of the mobility timeline.
struct MobilitySegment {
  MotionState state = MotionState::kStationary;
  SimDuration duration = kSecond;
};

/// Piecewise-constant motion timeline with a per-state intensity level.
///
/// Intensity is the knob everything else keys off: view jitter magnitude in
/// the video generator and accel/gyro variance in the IMU generator are both
/// monotone in it.
class MobilityModel {
 public:
  /// Requires at least one segment with positive duration.
  explicit MobilityModel(std::vector<MobilitySegment> segments);

  /// Random alternating schedule of roughly `total` length. `p_state` are
  /// relative weights of (stationary, minor, major); segment lengths are
  /// exponential with mean `mean_segment`.
  static MobilityModel random(Rng& rng, SimDuration total,
                              SimDuration mean_segment,
                              double p_stationary = 0.4, double p_minor = 0.4,
                              double p_major = 0.2);

  /// Constant-state convenience model.
  static MobilityModel constant(MotionState state, SimDuration total);

  /// State at time `t` (clamped to the final segment past the end).
  MotionState state_at(SimTime t) const noexcept;

  /// Motion intensity in [0, 1] at time `t`: 0.02 / 0.30 / 1.00 for
  /// stationary / minor / major.
  double intensity_at(SimTime t) const noexcept;

  /// Intensity level a state maps to (same scale as intensity_at).
  static double intensity_of(MotionState s) noexcept;

  SimDuration total_duration() const noexcept { return total_; }
  const std::vector<MobilitySegment>& segments() const noexcept {
    return segments_;
  }

 private:
  std::vector<MobilitySegment> segments_;
  std::vector<SimTime> ends_;  // cumulative segment end times
  SimDuration total_ = 0;
};

}  // namespace apx

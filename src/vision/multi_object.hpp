#pragma once
// Multi-object frames and region-level reuse. Real camera frames rarely
// contain exactly one object; recognition apps run detection + per-region
// classification. For caching this matters structurally: a whole-frame
// feature changes whenever ANY object in view changes, while per-region
// features keep matching for the regions that did not change — region
// granularity is what makes approximate caching effective on multi-object
// scenes (the DeepCache-lineage observation, exhibited in
// bench_f10_regions).
//
// The region detector here is a fixed grid — the stand-in for a real
// region-proposal stage, with its own simulated latency (detection is much
// cheaper than classification on phones).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/image/scene.hpp"
#include "src/video/stream.hpp"

namespace apx {

/// A frame showing `kGridSide` x `kGridSide` objects in a grid.
struct MultiFrame {
  static constexpr int kGridSide = 2;
  static constexpr int kRegions = kGridSide * kGridSide;

  SimTime t = 0;
  std::array<Label, kRegions> true_labels{};
  std::array<bool, kRegions> changed{};  ///< region got a new object now
  Image image;
};

/// Stream of multi-object frames: each grid slot runs its own Poisson
/// object-change process (per-slot rate), all slots share the camera's
/// photometric state. Views are gently jittered frame to frame.
class MultiObjectStream {
 public:
  struct Config {
    double fps = 10.0;
    double slot_change_rate = 0.15;  ///< object changes per second per slot
    float sensor_noise = 0.02f;
    float jitter = 0.02f;            ///< per-frame view drift magnitude
  };

  MultiObjectStream(const SceneGenerator& scenes, const ZipfSampler& popularity,
                    const Config& config, std::uint64_t seed);

  /// Renders the next frame (each region one object).
  MultiFrame next();

  SimDuration frame_period() const noexcept { return period_; }

 private:
  void change_slot(int slot);

  const SceneGenerator* scenes_;
  const ZipfSampler* popularity_;
  Config config_;
  Rng rng_;
  SimDuration period_;
  SimTime next_t_ = 0;
  std::array<Label, MultiFrame::kRegions> labels_{};
  std::array<ViewParams, MultiFrame::kRegions> views_{};
};

/// Composes per-region renderings into one frame image.
Image compose_grid(const SceneGenerator& scenes,
                   const std::array<Label, MultiFrame::kRegions>& labels,
                   const std::array<ViewParams, MultiFrame::kRegions>& views);

/// Crops region `index` (row-major) out of a grid frame.
Image crop_region(const Image& frame, int index);

/// Maps a MultiFrame's per-region change flags onto a finer `grid` x `grid`
/// block mask (row-major, 1 = changed; `grid` must be a positive multiple
/// of kGridSide): a block is flagged when the region it falls in changed
/// this frame. The bridge between the stream's ground-truth change process
/// and the region-reuse rung's block grid (bench_m5_regions).
void region_change_mask(const MultiFrame& frame, int grid,
                        std::span<std::uint8_t> out);

/// Simulated cost of the region-proposal stage for one frame.
constexpr SimDuration kRegionDetectLatency = 3 * kMillisecond;

}  // namespace apx

#include "src/vision/multi_object.hpp"

#include <cmath>
#include <stdexcept>

namespace apx {

Image compose_grid(const SceneGenerator& scenes,
                   const std::array<Label, MultiFrame::kRegions>& labels,
                   const std::array<ViewParams, MultiFrame::kRegions>& views) {
  constexpr int kSide = MultiFrame::kGridSide;
  const int cell = scenes.config().image_size;
  const int channels = scenes.config().channels;
  Image frame(cell * kSide, cell * kSide, channels);
  for (int region = 0; region < MultiFrame::kRegions; ++region) {
    const Image tile = scenes.render(labels[static_cast<std::size_t>(region)],
                                     views[static_cast<std::size_t>(region)]);
    const int ox = (region % kSide) * cell;
    const int oy = (region / kSide) * cell;
    for (int y = 0; y < cell; ++y) {
      for (int x = 0; x < cell; ++x) {
        for (int c = 0; c < channels; ++c) {
          frame.at(ox + x, oy + y, c) = tile.at(x, y, c);
        }
      }
    }
  }
  return frame;
}

Image crop_region(const Image& frame, int index) {
  constexpr int kSide = MultiFrame::kGridSide;
  if (index < 0 || index >= MultiFrame::kRegions) {
    throw std::out_of_range("crop_region: bad index");
  }
  const int cell_w = frame.width() / kSide;
  const int cell_h = frame.height() / kSide;
  const int ox = (index % kSide) * cell_w;
  const int oy = (index / kSide) * cell_h;
  Image out(cell_w, cell_h, frame.channels());
  for (int y = 0; y < cell_h; ++y) {
    for (int x = 0; x < cell_w; ++x) {
      for (int c = 0; c < frame.channels(); ++c) {
        out.at(x, y, c) = frame.at(ox + x, oy + y, c);
      }
    }
  }
  return out;
}

MultiObjectStream::MultiObjectStream(const SceneGenerator& scenes,
                                     const ZipfSampler& popularity,
                                     const Config& config, std::uint64_t seed)
    : scenes_(&scenes), popularity_(&popularity), config_(config), rng_(seed) {
  if (config.fps <= 0.0) {
    throw std::invalid_argument("MultiObjectStream: fps <= 0");
  }
  period_ =
      static_cast<SimDuration>(static_cast<double>(kSecond) / config.fps);
  if (period_ <= 0) period_ = 1;
  for (int slot = 0; slot < MultiFrame::kRegions; ++slot) change_slot(slot);
}

void MultiObjectStream::change_slot(int slot) {
  const auto i = static_cast<std::size_t>(slot);
  labels_[i] = static_cast<Label>(popularity_->sample(rng_));
  views_[i] = ViewParams{};
  views_[i].dx = static_cast<float>(rng_.normal(0.0, 0.15));
  views_[i].dy = static_cast<float>(rng_.normal(0.0, 0.15));
  views_[i].zoom = static_cast<float>(rng_.uniform(0.95, 1.1));
  views_[i].noise_sigma = config_.sensor_noise;
  views_[i].noise_seed = rng_.next_u64();
}

MultiFrame MultiObjectStream::next() {
  MultiFrame frame;
  frame.t = next_t_;
  next_t_ += period_;

  const double p_change =
      1.0 - std::exp(-config_.slot_change_rate * to_seconds(period_));
  for (int slot = 0; slot < MultiFrame::kRegions; ++slot) {
    const auto i = static_cast<std::size_t>(slot);
    if (rng_.chance(p_change)) {
      change_slot(slot);
      frame.changed[i] = true;
    } else {
      views_[i] = views_[i].jittered(rng_, config_.jitter);
      views_[i].noise_sigma = config_.sensor_noise;
    }
    frame.true_labels[i] = labels_[i];
  }
  frame.image = compose_grid(*scenes_, labels_, views_);
  return frame;
}

void region_change_mask(const MultiFrame& frame, int grid,
                        std::span<std::uint8_t> out) {
  if (grid <= 0 || grid % MultiFrame::kGridSide != 0 ||
      out.size() != static_cast<std::size_t>(grid) * grid) {
    throw std::invalid_argument("region_change_mask: bad grid");
  }
  const int per_region = grid / MultiFrame::kGridSide;
  for (int by = 0; by < grid; ++by) {
    for (int bx = 0; bx < grid; ++bx) {
      const int region =
          (by / per_region) * MultiFrame::kGridSide + (bx / per_region);
      out[static_cast<std::size_t>(by) * grid + bx] =
          frame.changed[static_cast<std::size_t>(region)] ? 1 : 0;
    }
  }
}

}  // namespace apx

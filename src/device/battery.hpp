#pragma once
// Battery and device power model. Converts the per-frame energy numbers the
// simulation produces into what a user actually experiences: hours of
// continuous recognition on one charge. Baseline rails (SoC idle + camera)
// drain regardless of recognition strategy; the recognition energy is what
// the cache reduces.

#include "src/util/clock.hpp"

namespace apx {

/// Power envelope of a mid-range phone running a camera app.
struct BatteryParams {
  double capacity_mah = 3000.0;
  double voltage_v = 3.85;
  /// Always-on draw while the app is foreground: SoC idle + screen.
  double idle_power_mw = 900.0;
  /// Camera sensor + ISP while streaming frames.
  double camera_power_mw = 450.0;
};

/// Mutable battery state; drains by energy or by power over time.
class Battery {
 public:
  explicit Battery(const BatteryParams& params) noexcept;

  /// Removes `mj` millijoules (clamped at empty).
  void drain_mj(double mj) noexcept;

  /// Removes `power_mw` drawn for `duration`.
  void drain_power(double power_mw, SimDuration duration) noexcept;

  double remaining_mj() const noexcept { return remaining_mj_; }
  /// State of charge in [0, 1].
  double fraction() const noexcept;
  bool empty() const noexcept { return remaining_mj_ <= 0.0; }

 private:
  double capacity_mj_;
  double remaining_mj_;
};

/// Hours of continuous recognition a full charge sustains, given the
/// average per-frame recognition energy and the frame rate, on top of the
/// baseline idle + camera rails.
double continuous_recognition_hours(const BatteryParams& params,
                                    double energy_per_frame_mj, double fps);

}  // namespace apx

#include "src/device/battery.hpp"

#include <algorithm>

namespace apx {
namespace {

// 1 mAh = 3.6 coulombs; energy [mJ] = charge [C] * voltage [V] * 1000.
double capacity_mj_of(const BatteryParams& params) {
  return params.capacity_mah * 3.6 * params.voltage_v * 1000.0;
}

}  // namespace

Battery::Battery(const BatteryParams& params) noexcept
    : capacity_mj_(capacity_mj_of(params)), remaining_mj_(capacity_mj_) {}

void Battery::drain_mj(double mj) noexcept {
  remaining_mj_ = std::max(0.0, remaining_mj_ - std::max(0.0, mj));
}

void Battery::drain_power(double power_mw, SimDuration duration) noexcept {
  // mW * s = mJ.
  drain_mj(power_mw * to_seconds(duration));
}

double Battery::fraction() const noexcept {
  return capacity_mj_ <= 0.0 ? 0.0 : remaining_mj_ / capacity_mj_;
}

double continuous_recognition_hours(const BatteryParams& params,
                                    double energy_per_frame_mj, double fps) {
  const double baseline_mw = params.idle_power_mw + params.camera_power_mw;
  const double recognition_mw = energy_per_frame_mj * fps;  // mJ/s = mW
  const double total_mw = baseline_mw + recognition_mw;
  if (total_mw <= 0.0) return 0.0;
  const double seconds = capacity_mj_of(params) / total_mw;
  return seconds / 3600.0;
}

}  // namespace apx

#include "src/core/result.hpp"

namespace apx {

const char* to_string(ResultSource source) noexcept {
  switch (source) {
    case ResultSource::kImuFastPath: return "imu-fastpath";
    case ResultSource::kTemporalReuse: return "temporal";
    case ResultSource::kLocalCacheHit: return "local-cache";
    case ResultSource::kPeerCacheHit: return "peer-cache";
    case ResultSource::kFullInference: return "inference";
    case ResultSource::kWarmCacheHit: return "warm-cache";
    case ResultSource::kEdgeCacheHit: return "edge-cache";
  }
  return "?";
}

}  // namespace apx

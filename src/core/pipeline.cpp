#include "src/core/pipeline.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"

namespace apx {

const char* to_string(ResultSource source) noexcept {
  switch (source) {
    case ResultSource::kImuFastPath: return "imu-fastpath";
    case ResultSource::kTemporalReuse: return "temporal";
    case ResultSource::kLocalCacheHit: return "local-cache";
    case ResultSource::kPeerCacheHit: return "peer-cache";
    case ResultSource::kFullInference: return "inference";
  }
  return "?";
}

ReusePipeline::ReusePipeline(EventSimulator& sim, const PipelineConfig& config,
                             const FeatureExtractor& extractor,
                             RecognitionModel& model, ApproxCache* cache,
                             ExactCache* exact_cache, PeerCacheService* peers,
                             std::uint64_t seed)
    : sim_(&sim),
      config_(config),
      extractor_(&extractor),
      model_(&model),
      cache_(cache),
      exact_cache_(exact_cache),
      peers_(peers),
      rng_(seed),
      temporal_(config.temporal),
      gate_(config.gate),
      threshold_(config.threshold) {
  if (config.cache_mode == CacheMode::kApprox && cache == nullptr) {
    throw std::invalid_argument("ReusePipeline: approx mode needs a cache");
  }
  if (config.cache_mode == CacheMode::kExact && exact_cache == nullptr) {
    throw std::invalid_argument("ReusePipeline: exact mode needs a cache");
  }
}

bool ReusePipeline::process(const Frame& frame, MotionState motion,
                            Callback done) {
  assert(done);
  if (busy_) {
    counters_.inc("dropped");
    return false;
  }
  busy_ = true;
  ++epoch_;
  inflight_.emplace();
  inflight_->frame = frame;
  inflight_->motion = motion;
  inflight_->done = std::move(done);
  trace_.reset(frame.t);

  // Rung 0 — IMU: consult the motion estimate, decide gating, and take the
  // stationary fast path when the last result is still fresh.
  const std::uint64_t epoch = epoch_;
  const bool imu_active =
      config_.enable_imu_gate || config_.enable_imu_fastpath;
  const SimDuration imu_cost = imu_active ? config_.imu_check_latency : 0;
  if (imu_active) trace_.begin_span(Rung::kImuGate, sim_->now());
  spend(imu_cost);
  sim_->schedule_after(imu_cost, [this, epoch] {
    if (epoch != epoch_ || !busy_) return;
    GateDecision gate{true, 1.0f};
    if (config_.enable_imu_gate) gate = gate_.decide(inflight_->motion);
    if (config_.enable_adaptive_threshold) {
      // The motion gate and the feedback controller compose: the gate is a
      // per-frame modulation, the controller a slow per-deployment trim.
      gate.threshold_scale *= threshold_.scale();
    }
    inflight_->gate = gate;

    if (config_.enable_imu_fastpath &&
        inflight_->motion == MotionState::kStationary &&
        last_result_.has_value() && last_result_->label != kNoLabel &&
        sim_->now() - last_result_time_ <= config_.imu_fastpath_max_age) {
      trace_.end_span(RungOutcome::kHit, sim_->now());
      complete(ResultSource::kImuFastPath, last_result_->label,
               last_result_->confidence);
      return;
    }
    trace_.end_span(RungOutcome::kMiss, sim_->now());
    run_temporal_rung();
  });
  return true;
}

void ReusePipeline::run_temporal_rung() {
  if (!config_.enable_temporal) {
    run_cache_rung();
    return;
  }
  if (!inflight_->gate.allow_temporal_reuse) {
    // Major motion: the previous keyframe no longer describes the scene.
    temporal_.invalidate();
    run_cache_rung();
    return;
  }
  const TemporalCheck check = temporal_.check(inflight_->frame.image);
  trace_.begin_span(Rung::kTemporal, sim_->now());
  spend(check.latency);
  const std::uint64_t epoch = epoch_;
  sim_->schedule_after(check.latency, [this, epoch, check] {
    if (epoch != epoch_ || !busy_) return;
    if (check.reusable && last_result_.has_value() &&
        last_result_->label != kNoLabel) {
      trace_.end_span(RungOutcome::kHit, sim_->now());
      complete(ResultSource::kTemporalReuse, last_result_->label,
               last_result_->confidence);
      return;
    }
    trace_.end_span(RungOutcome::kMiss, sim_->now());
    run_cache_rung();
  });
}

void ReusePipeline::run_cache_rung() {
  switch (config_.cache_mode) {
    case CacheMode::kNone:
      run_inference_rung();
      return;
    case CacheMode::kExact: {
      trace_.begin_span(Rung::kLocalCache, sim_->now());
      spend(extractor_->latency());
      const std::uint64_t epoch = epoch_;
      sim_->schedule_after(extractor_->latency(), [this, epoch] {
        if (epoch != epoch_ || !busy_) return;
        inflight_->features = extractor_->extract(inflight_->frame.image);
        inflight_->features_ready = true;
        const auto hit = exact_cache_->lookup(inflight_->features);
        const SimDuration cost = exact_cache_->lookup_latency();
        spend(cost);
        const std::uint64_t epoch2 = epoch_;
        sim_->schedule_after(cost, [this, epoch2, hit] {
          if (epoch2 != epoch_ || !busy_) return;
          if (hit.has_value()) {
            trace_.end_span(RungOutcome::kHit, sim_->now());
            complete(ResultSource::kLocalCacheHit, *hit, 1.0f);
          } else {
            trace_.end_span(RungOutcome::kMiss, sim_->now());
            run_inference_rung();
          }
        });
      });
      return;
    }
    case CacheMode::kApprox:
      run_local_cache_rung();
      return;
  }
}

void ReusePipeline::run_local_cache_rung() {
  trace_.begin_span(Rung::kLocalCache, sim_->now());
  spend(extractor_->latency());
  const std::uint64_t epoch = epoch_;
  sim_->schedule_after(extractor_->latency(), [this, epoch] {
    if (epoch != epoch_ || !busy_) return;
    inflight_->features = extractor_->extract(inflight_->frame.image);
    inflight_->features_ready = true;
    const CacheLookupResult res = cache_->lookup(
        inflight_->features, sim_->now(),
        {.threshold_scale = inflight_->gate.threshold_scale,
         .trace = &trace_});
    spend(res.latency);
    const std::uint64_t epoch2 = epoch_;
    sim_->schedule_after(res.latency, [this, epoch2, vote = res.vote] {
      if (epoch2 != epoch_ || !busy_) return;
      if (vote.has_value()) {
        trace_.end_span(RungOutcome::kHit, sim_->now());
        complete(ResultSource::kLocalCacheHit, vote->label,
                 vote->homogeneity);
        return;
      }
      trace_.end_span(RungOutcome::kMiss, sim_->now());
      // The backoff gate keeps a partitioned device from paying the P2P
      // timeout every frame: after repeated degraded rounds the rung is
      // skipped entirely and the frame falls straight through to the DNN.
      if (config_.enable_p2p && peers_ != nullptr &&
          peers_->should_attempt(sim_->now())) {
        run_p2p_rung();
      } else {
        run_inference_rung();
      }
    });
  });
}

void ReusePipeline::run_p2p_rung() {
  trace_.begin_span(Rung::kP2p, sim_->now());
  const std::uint64_t epoch = epoch_;
  peers_->async_lookup(
      inflight_->features, [this, epoch](std::vector<WireEntry> entries) {
        if (epoch != epoch_ || !busy_) return;
        if (entries.empty()) {
          trace_.end_span(RungOutcome::kMiss, sim_->now());
          run_inference_rung();
          return;
        }
        // Responses were merged into the local cache by the peer service;
        // re-run the homogenized vote over the enriched neighbourhood.
        const CacheLookupResult res = cache_->lookup(
            inflight_->features, sim_->now(),
            {.threshold_scale = inflight_->gate.threshold_scale,
             .trace = &trace_});
        spend(res.latency);
        const std::uint64_t epoch2 = epoch_;
        sim_->schedule_after(res.latency, [this, epoch2, vote = res.vote] {
          if (epoch2 != epoch_ || !busy_) return;
          if (vote.has_value()) {
            trace_.end_span(RungOutcome::kHit, sim_->now());
            complete(ResultSource::kPeerCacheHit, vote->label,
                     vote->homogeneity);
          } else {
            trace_.end_span(RungOutcome::kMiss, sim_->now());
            run_inference_rung();
          }
        });
      });
}

void ReusePipeline::run_inference_rung() {
  trace_.begin_span(Rung::kDnn, sim_->now());
  const SimDuration latency = model_->sample_latency(rng_);
  inflight_->dnn_energy = model_->energy_mj();
  const std::uint64_t epoch = epoch_;
  sim_->schedule_after(latency, [this, epoch] {
    if (epoch != epoch_ || !busy_) return;
    const Prediction pred = model_->infer(
        inflight_->frame.image, inflight_->frame.true_label, rng_);
    if (config_.enable_adaptive_threshold &&
        config_.cache_mode == CacheMode::kApprox &&
        inflight_->features_ready) {
      // Validation event: the DNN ran, so compare it against the cache's
      // hypothetical vote just past the current threshold edge.
      const auto vote = cache_->peek_vote(
          inflight_->features,
          {.threshold_scale = threshold_.observation_scale()});
      if (vote.has_value()) threshold_.observe(vote->label == pred.label);
    }
    if (config_.cache_mode == CacheMode::kApprox &&
        inflight_->features_ready) {
      cache_->insert(inflight_->features, pred.label, pred.confidence,
                     sim_->now());
    } else if (config_.cache_mode == CacheMode::kExact &&
               inflight_->features_ready) {
      exact_cache_->insert(inflight_->features, pred.label);
    }
    // The DNN always answers: its span is a hit by construction.
    trace_.end_span(RungOutcome::kHit, sim_->now());
    complete(ResultSource::kFullInference, pred.label, pred.confidence);
  });
}

void ReusePipeline::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  for (std::size_t r = 0; r < kRungCount; ++r) {
    const Rung rung = static_cast<Rung>(r);
    rung_latency_hist_[r] =
        metrics.histogram(rung_latency_metric(rung), latency_us_bounds());
    rung_hit_counter_[r] =
        metrics.counter(rung_outcome_metric(rung, RungOutcome::kHit));
    rung_miss_counter_[r] =
        metrics.counter(rung_outcome_metric(rung, RungOutcome::kMiss));
  }
  for (std::size_t s = 0; s < kResultSourceCount; ++s) {
    source_counter_[s] = metrics.counter(
        source_metric(to_string(static_cast<ResultSource>(s))));
  }
}

double ReusePipeline::compute_energy(ResultSource /*source*/) const {
  // CPU-active time converts at the configured power draw; DNN runs carry
  // their own calibrated energy figure on top.
  const double cpu_mj = to_ms(inflight_->compute_latency) *
                        config_.cpu_active_power_mw / 1000.0;
  return cpu_mj + inflight_->dnn_energy;
}

void ReusePipeline::complete(ResultSource source, Label label,
                             float confidence) {
  assert(busy_ && inflight_.has_value());
  RecognitionResult result;
  result.frame_time = inflight_->frame.t;
  result.completion_time = sim_->now();
  result.latency = result.completion_time - result.frame_time;
  result.label = label;
  result.true_label = inflight_->frame.true_label;
  result.correct = (label == result.true_label);
  result.source = source;
  result.compute_energy_mj = compute_energy(source);
  counters_.inc(to_string(source));
  if (metrics_ != nullptr) {
    for (const TraceSpan& span : trace_.spans()) {
      const auto r = static_cast<std::size_t>(span.rung);
      metrics_->record(rung_latency_hist_[r],
                       static_cast<double>(span.end - span.start));
      metrics_->inc(span.outcome == RungOutcome::kHit ? rung_hit_counter_[r]
                                                      : rung_miss_counter_[r]);
    }
    metrics_->inc(source_counter_[static_cast<std::size_t>(source)]);
  }

  last_result_ = Prediction{label, confidence};
  // The fast path must not refresh its own freshness clock: a result is
  // only "fresh" for imu_fastpath_max_age after something actually looked
  // at pixels, otherwise one stale label could persist forever while the
  // device sits still.
  if (source != ResultSource::kImuFastPath) {
    last_result_time_ = sim_->now();
  }
  // A keyframe is any frame whose result came from actually looking at the
  // image; temporal reuse chains from it, and the IMU fast path never
  // refreshes it (it never inspects pixels).
  if (source == ResultSource::kLocalCacheHit ||
      source == ResultSource::kPeerCacheHit ||
      source == ResultSource::kFullInference) {
    temporal_.set_keyframe(inflight_->frame.image);
  }

  Callback done = std::move(inflight_->done);
  inflight_.reset();
  busy_ = false;
  done(result);
}

}  // namespace apx

#include "src/core/pipeline.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/obs/report.hpp"

namespace apx {

ReusePipeline::ReusePipeline(EventSimulator& sim, const PipelineConfig& config,
                             const FeatureExtractor& extractor,
                             RecognitionModel& model, ApproxCache* cache,
                             ExactCache* exact_cache, PeerCacheService* peers,
                             EdgeClient* edge, std::uint64_t seed)
    : sim_(&sim),
      config_(config),
      extractor_(&extractor),
      model_(&model),
      cache_(cache),
      exact_cache_(exact_cache),
      peers_(peers),
      edge_(edge),
      rng_(seed),
      threshold_(config.threshold) {
  if (!config_.ladder.empty()) {
    // The declarative spec is authoritative; sync the flags to it so
    // flag-reading rungs and callers can never observe a divergent config.
    spec_ = LadderSpec::parse(config_.ladder);
    apply_ladder(config_, spec_);
  } else {
    spec_ = LadderSpec::from_config(config_);
  }
  if (spec_.has("local") && cache_ == nullptr) {
    throw std::invalid_argument("ReusePipeline: approx mode needs a cache");
  }
  if (spec_.has("exact") && exact_cache_ == nullptr) {
    throw std::invalid_argument("ReusePipeline: exact mode needs a cache");
  }
  if (spec_.has("edge") && edge_ == nullptr) {
    throw std::invalid_argument(
        "ReusePipeline: edge rung needs an edge client");
  }
  if (spec_.has("regions") && extractor_->staged_cnn() == nullptr) {
    throw std::invalid_argument(
        "ReusePipeline: regions rung needs a staged-CNN extractor "
        "(--extractor cnn)");
  }
  const RungBuildContext build_ctx{&config_, &spec_,       extractor_,
                                   model_,   cache_,       exact_cache_,
                                   peers_,   edge_};
  rungs_ = build_ladder(spec_, build_ctx);
  register_instruments(owned_metrics_);
}

bool ReusePipeline::process(const Frame& frame, MotionState motion,
                            Callback done) {
  assert(done);
  if (busy_) {
    metrics_->inc(dropped_counter_);
    return false;
  }
  busy_ = true;
  ++epoch_;
  ctx_.emplace();
  ctx_->frame = frame;
  ctx_->motion = motion;
  ctx_->done = std::move(done);
  trace_.reset(frame.t);
  ctx_->rung_index = 0;
  rungs_.front()->run(*this);
  return true;
}

void ReusePipeline::schedule(SimDuration delay, std::function<void()> fn) {
  const std::uint64_t epoch = epoch_;
  sim_->schedule_after(delay, [this, epoch, fn = std::move(fn)] {
    if (epoch != epoch_ || !busy_) return;
    fn();
  });
}

void ReusePipeline::advance() {
  assert(busy_ && ctx_.has_value());
  ++ctx_->rung_index;
  assert(ctx_->rung_index < rungs_.size());
  rungs_[ctx_->rung_index]->run(*this);
}

void ReusePipeline::register_instruments(MetricsRegistry& metrics) {
  rung_instruments_.clear();
  source_counters_.clear();
  const auto add_rung = [&](std::string_view name) {
    if (rung_instruments_.find(name) != rung_instruments_.end()) return;
    RungInstruments instruments;
    instruments.latency_us =
        metrics.histogram(rung_latency_metric(name), latency_us_bounds());
    instruments.hit =
        metrics.counter(rung_outcome_metric(name, RungOutcome::kHit));
    instruments.miss =
        metrics.counter(rung_outcome_metric(name, RungOutcome::kMiss));
    rung_instruments_.emplace(std::string(name), instruments);
  };
  const auto add_source = [&](const char* name) {
    if (source_counters_.find(std::string_view{name}) !=
        source_counters_.end()) {
      return;
    }
    source_counters_.emplace(name, metrics.counter(source_metric(name)));
  };
  // Schema baseline first (every pipeline exports these, whatever its
  // ladder), then whatever extra rungs/sources this ladder brings.
  for (const char* name : schema_rung_names()) add_rung(name);
  for (const auto& rung : rungs_) add_rung(to_string(rung->trace_rung()));
  for (const char* name : schema_source_names()) add_source(name);
  for (const auto& rung : rungs_) {
    if (const char* extra = rung->extra_source()) add_source(extra);
  }
  // Rung-owned subsystem instruments (regions block counters, ...) resolve
  // their handles against whichever registry is current.
  for (const auto& rung : rungs_) rung->register_metrics(metrics);
  dropped_counter_ = metrics.counter("pipeline/dropped");
}

void ReusePipeline::attach_metrics(MetricsRegistry& metrics) {
  metrics.merge(owned_metrics_);
  metrics_ = &metrics;
  register_instruments(metrics);
}

const Counter& ReusePipeline::counters() const {
  // attach_metrics may re-point metrics_, so the cache is keyed on both the
  // registry identity and its mutation stamp.
  if (counters_view_source_ == metrics_ &&
      counters_view_version_ == metrics_->version()) {
    return counters_view_;
  }
  counters_view_ = Counter{};
  for (const auto& [name, id] : source_counters_) {
    const std::uint64_t value = metrics_->value(id);
    if (value != 0) counters_view_.inc(name, value);
  }
  const std::uint64_t dropped = metrics_->value(dropped_counter_);
  if (dropped != 0) counters_view_.inc("dropped", dropped);
  counters_view_source_ = metrics_;
  counters_view_version_ = metrics_->version();
  return counters_view_;
}

double ReusePipeline::compute_energy() const {
  // CPU-active time converts at the configured power draw; DNN runs carry
  // their own calibrated energy figure on top.
  const double cpu_mj = to_ms(ctx_->compute_latency) *
                        config_.cpu_active_power_mw / 1000.0;
  return cpu_mj + ctx_->dnn_energy;
}

void ReusePipeline::finish(ResultSource source, Label label,
                           float confidence) {
  assert(busy_ && ctx_.has_value());
  RecognitionResult result;
  result.frame_time = ctx_->frame.t;
  result.completion_time = sim_->now();
  result.latency = result.completion_time - result.frame_time;
  result.label = label;
  result.true_label = ctx_->frame.true_label;
  result.correct = (label == result.true_label);
  result.source = source;
  result.compute_energy_mj = compute_energy();
  for (const TraceSpan& span : trace_.spans()) {
    const auto it =
        rung_instruments_.find(std::string_view{to_string(span.rung)});
    assert(it != rung_instruments_.end());
    metrics_->record(it->second.latency_us,
                     static_cast<double>(span.end - span.start));
    metrics_->inc(span.outcome == RungOutcome::kHit ? it->second.hit
                                                    : it->second.miss);
  }
  const auto source_it =
      source_counters_.find(std::string_view{to_string(source)});
  assert(source_it != source_counters_.end());
  metrics_->inc(source_it->second);

  last_result_ = Prediction{label, confidence};
  // The fast path must not refresh its own freshness clock: a result is
  // only "fresh" for imu_fastpath_max_age after something actually looked
  // at pixels, otherwise one stale label could persist forever while the
  // device sits still.
  if (source != ResultSource::kImuFastPath) {
    last_result_time_ = sim_->now();
  }
  // Every rung observes the outcome while the context is still alive
  // (keyframe refresh, warm-tier learning, ...).
  for (const auto& rung : rungs_) rung->on_result(*this, result);

  Callback done = std::move(ctx_->done);
  ctx_.reset();
  busy_ = false;
  done(result);
}

}  // namespace apx

#include "src/core/config.hpp"

#include "src/core/rungs/ladder.hpp"

namespace apx {
namespace {

/// Builds a preset from its ladder spec, then clears the spec string so the
/// result stays flag-driven: tests and callers toggle individual enable_*
/// bits on presets, and the pipeline re-derives the identical ladder from
/// the flags (LadderSpec::from_config).
PipelineConfig preset(const char* spec) {
  PipelineConfig cfg;
  apply_ladder(cfg, LadderSpec::parse(spec));
  cfg.ladder.clear();
  return cfg;
}

}  // namespace

PipelineConfig make_nocache_config() { return preset("dnn"); }

PipelineConfig make_exactcache_config() { return preset("exact,dnn"); }

PipelineConfig make_approx_local_config() { return preset("local,dnn"); }

PipelineConfig make_approx_imu_config() { return preset("imu,local,dnn"); }

PipelineConfig make_approx_video_config() {
  return preset("imu,temporal,local,dnn");
}

PipelineConfig make_full_system_config() {
  return preset("imu,temporal,local,p2p,dnn");
}

PipelineConfig make_adaptive_config() {
  PipelineConfig cfg = make_full_system_config();
  cfg.enable_adaptive_threshold = true;
  return cfg;
}

PipelineConfig make_edge_config() {
  return preset("imu,temporal,local,p2p,edge,dnn");
}

PipelineConfig make_ladder_config(std::string_view spec) {
  PipelineConfig cfg;
  apply_ladder(cfg, LadderSpec::parse(spec));
  return cfg;
}

}  // namespace apx

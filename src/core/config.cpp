#include "src/core/config.hpp"

namespace apx {

PipelineConfig make_nocache_config() {
  PipelineConfig cfg;
  cfg.cache_mode = CacheMode::kNone;
  cfg.enable_imu_gate = false;
  cfg.enable_imu_fastpath = false;
  cfg.enable_temporal = false;
  cfg.enable_p2p = false;
  return cfg;
}

PipelineConfig make_exactcache_config() {
  PipelineConfig cfg = make_nocache_config();
  cfg.cache_mode = CacheMode::kExact;
  return cfg;
}

PipelineConfig make_approx_local_config() {
  PipelineConfig cfg = make_nocache_config();
  cfg.cache_mode = CacheMode::kApprox;
  return cfg;
}

PipelineConfig make_approx_imu_config() {
  PipelineConfig cfg = make_approx_local_config();
  cfg.enable_imu_gate = true;
  cfg.enable_imu_fastpath = true;
  return cfg;
}

PipelineConfig make_approx_video_config() {
  PipelineConfig cfg = make_approx_imu_config();
  cfg.enable_temporal = true;
  return cfg;
}

PipelineConfig make_full_system_config() {
  PipelineConfig cfg = make_approx_video_config();
  cfg.enable_p2p = true;
  return cfg;
}

PipelineConfig make_adaptive_config() {
  PipelineConfig cfg = make_full_system_config();
  cfg.enable_adaptive_threshold = true;
  return cfg;
}

}  // namespace apx

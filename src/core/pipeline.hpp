#pragma once
// ReusePipeline — the poster's contribution. For each frame it walks the
// reuse ladder cheapest-first and only runs the DNN when every rung fails:
//
//   frame -> [IMU fast path] -> [temporal keyframe reuse]
//         -> [quantized warm tier (optional)]
//         -> [feature extraction -> local approximate cache (A-LSH + H-kNN)]
//         -> [P2P lookup, merge, re-vote] -> full DNN inference
//
// The ladder is data, not code: a vector of ReuseRung plugins built from a
// LadderSpec (core/rungs/ladder.hpp) — either the declarative string in
// PipelineConfig::ladder or the spec derived from the config's enable_*
// flags. The pipeline itself is only the driver: frame admission, the
// epoch-guarded scheduling seam, metrics plumbing and result delivery.
// Each rung pays its simulated on-device cost; the P2P rung additionally
// waits for the network round (event-driven). Results are delivered
// through a completion callback because the P2P and inference stages are
// asynchronous in simulated time.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/exact_cache.hpp"
#include "src/core/config.hpp"
#include "src/core/result.hpp"
#include "src/core/rungs/ladder.hpp"
#include "src/core/rungs/rung.hpp"
#include "src/features/extractor.hpp"
#include "src/net/event_sim.hpp"
#include "src/obs/frame_trace.hpp"
#include "src/obs/metrics.hpp"
#include "src/video/stream.hpp"

namespace apx {

/// Per-device recognition pipeline with computation reuse.
///
/// Single in-flight frame: process() refuses (returns false) while a frame
/// is being worked on, modelling a mobile app that drops frames when the
/// recognizer is busy. All referenced collaborators must outlive the
/// pipeline; `peers` may be null (single-device deployments).
class ReusePipeline {
 public:
  using Callback = std::function<void(const RecognitionResult&)>;

  /// Resolves the ladder (config.ladder when set, else derived from the
  /// enable_* flags) and builds the rung chain. Throws
  /// std::invalid_argument when the spec is malformed or needs a
  /// collaborator that was not provided (local without `cache`, exact
  /// without `exact_cache`, edge without `edge`).
  ReusePipeline(EventSimulator& sim, const PipelineConfig& config,
                const FeatureExtractor& extractor, RecognitionModel& model,
                ApproxCache* cache, ExactCache* exact_cache,
                PeerCacheService* peers, EdgeClient* edge,
                std::uint64_t seed);

  /// Edge-less deployments (the common case before the edge tier).
  ReusePipeline(EventSimulator& sim, const PipelineConfig& config,
                const FeatureExtractor& extractor, RecognitionModel& model,
                ApproxCache* cache, ExactCache* exact_cache,
                PeerCacheService* peers, std::uint64_t seed)
      : ReusePipeline(sim, config, extractor, model, cache, exact_cache,
                      peers, nullptr, seed) {}

  /// Starts processing `frame`; `done` fires exactly once on completion.
  /// Returns false (and drops the frame) when still busy with an earlier
  /// frame. `motion` is the device's current IMU-estimated motion state.
  bool process(const Frame& frame, MotionState motion, Callback done);

  bool busy() const noexcept { return busy_; }

  /// Lifetime counters: one key per ResultSource name plus "dropped" —
  /// a view rebuilt from the metrics registry (the single source of
  /// truth); keys that never fired are absent.
  const Counter& counters() const;

  const PipelineConfig& config() const noexcept { return config_; }

  /// The resolved ladder composition this pipeline runs.
  const LadderSpec& ladder() const noexcept { return spec_; }

  /// The adaptive threshold state (meaningful when the feature is enabled).
  const ThresholdController& threshold_controller() const noexcept {
    return threshold_;
  }

  /// Registers per-rung latency histograms, per-rung hit/miss counters and
  /// per-source counters (see obs/report.hpp for the naming scheme) and
  /// starts recording every completed frame's trace into them. Counts
  /// accumulated before the attach (in the pipeline's internal registry)
  /// are merged in, so nothing is lost. The registry must outlive the
  /// pipeline.
  void attach_metrics(MetricsRegistry& metrics);

  /// Trace of the most recently completed frame (rungs visited, in order).
  /// Reused across frames: read it from the completion callback, before the
  /// next process() call resets it.
  const FrameTrace& last_trace() const noexcept { return trace_; }

  // ----------------------------------------------------- rung-facing API
  // Everything below exists for ReuseRung implementations; application
  // code has no reason to call it.

  EventSimulator& sim() noexcept { return *sim_; }
  Rng& rng() noexcept { return rng_; }
  FrameTrace& trace() noexcept { return trace_; }

  /// The in-flight frame. Only valid while busy().
  FrameContext& frame_ctx() noexcept { return *ctx_; }

  /// Mutable adaptive-threshold controller (IMU trim, DNN validation).
  ThresholdController& threshold() noexcept { return threshold_; }

  /// Last delivered result (feeds the IMU fast path and temporal reuse).
  const std::optional<Prediction>& last_result() const noexcept {
    return last_result_;
  }
  SimTime last_result_time() const noexcept { return last_result_time_; }

  /// Adds `d` to the frame's CPU-active time (excludes DNN and radio).
  void spend(SimDuration d) { ctx_->compute_latency += d; }

  /// Epoch of the in-flight frame; live(epoch) tells a callback whether
  /// that frame is still the one being processed.
  std::uint64_t epoch() const noexcept { return epoch_; }
  bool live(std::uint64_t epoch) const noexcept {
    return epoch == epoch_ && busy_;
  }

  /// Schedules `fn` after `delay` of simulated time, epoch-guarded: it is
  /// silently dropped when the frame completed or was superseded meanwhile.
  void schedule(SimDuration delay, std::function<void()> fn);

  /// Hands the frame to the next rung down the ladder (synchronously).
  void advance();

  /// Completes the in-flight frame: builds the RecognitionResult, records
  /// metrics and trace spans, runs every rung's on_result hook, then fires
  /// the completion callback.
  void finish(ResultSource source, Label label, float confidence);

 private:
  struct RungInstruments {
    MetricsRegistry::HistogramId latency_us = 0;
    MetricsRegistry::CounterId hit = 0;
    MetricsRegistry::CounterId miss = 0;
  };

  /// (Re-)registers every instrument on `metrics`: the schema-baseline rung
  /// and source names plus whatever extra rungs/sources this ladder adds.
  void register_instruments(MetricsRegistry& metrics);
  double compute_energy() const;

  EventSimulator* sim_;
  PipelineConfig config_;
  const FeatureExtractor* extractor_;
  RecognitionModel* model_;
  ApproxCache* cache_;
  ExactCache* exact_cache_;
  PeerCacheService* peers_;
  EdgeClient* edge_;
  Rng rng_;

  ThresholdController threshold_;

  LadderSpec spec_;
  std::vector<std::unique_ptr<ReuseRung>> rungs_;

  bool busy_ = false;
  std::optional<FrameContext> ctx_;
  std::uint64_t epoch_ = 0;  ///< guards stale async callbacks

  // Last delivered result (feeds the IMU fast path).
  std::optional<Prediction> last_result_;
  SimTime last_result_time_ = 0;

  FrameTrace trace_;
  /// Single source of truth for pipeline counters. Until attach_metrics()
  /// the internal registry records everything; attaching merges it into
  /// the external one and re-points the instruments there.
  MetricsRegistry owned_metrics_;
  MetricsRegistry* metrics_ = &owned_metrics_;
  std::map<std::string, RungInstruments, std::less<>> rung_instruments_;
  std::map<std::string, MetricsRegistry::CounterId, std::less<>>
      source_counters_;
  MetricsRegistry::CounterId dropped_counter_ = 0;
  /// Legacy-shaped view rebuilt by counters() on demand. Cached against the
  /// registry's mutation stamp: the ladder-matrix smoke leg calls
  /// counters() per export, and rebuilding the map each time was pure
  /// waste when nothing changed in between.
  mutable Counter counters_view_;
  mutable const MetricsRegistry* counters_view_source_ = nullptr;
  mutable std::uint64_t counters_view_version_ = 0;
};

}  // namespace apx

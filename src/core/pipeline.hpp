#pragma once
// ReusePipeline — the poster's contribution. For each frame it tries the
// reuse ladder cheapest-first and only runs the DNN when every rung fails:
//
//   frame -> [IMU fast path] -> [temporal keyframe reuse]
//         -> [feature extraction -> local approximate cache (A-LSH + H-kNN)]
//         -> [P2P lookup, merge, re-vote] -> full DNN inference
//
// Each rung pays its simulated on-device cost; the P2P rung additionally
// waits for the network round (event-driven). Results are delivered through
// a completion callback because the P2P and inference stages are
// asynchronous in simulated time.

#include <array>
#include <functional>
#include <optional>

#include "src/cache/exact_cache.hpp"
#include "src/core/config.hpp"
#include "src/core/result.hpp"
#include "src/features/extractor.hpp"
#include "src/net/event_sim.hpp"
#include "src/obs/frame_trace.hpp"
#include "src/video/stream.hpp"

namespace apx {

class MetricsRegistry;

/// Per-device recognition pipeline with computation reuse.
///
/// Single in-flight frame: process() refuses (returns false) while a frame
/// is being worked on, modelling a mobile app that drops frames when the
/// recognizer is busy. All referenced collaborators must outlive the
/// pipeline; `peers` may be null (single-device deployments).
class ReusePipeline {
 public:
  using Callback = std::function<void(const RecognitionResult&)>;

  ReusePipeline(EventSimulator& sim, const PipelineConfig& config,
                const FeatureExtractor& extractor, RecognitionModel& model,
                ApproxCache* cache, ExactCache* exact_cache,
                PeerCacheService* peers, std::uint64_t seed);

  /// Starts processing `frame`; `done` fires exactly once on completion.
  /// Returns false (and drops the frame) when still busy with an earlier
  /// frame. `motion` is the device's current IMU-estimated motion state.
  bool process(const Frame& frame, MotionState motion, Callback done);

  bool busy() const noexcept { return busy_; }

  /// Lifetime counters: one key per ResultSource name plus "dropped".
  const Counter& counters() const noexcept { return counters_; }

  const PipelineConfig& config() const noexcept { return config_; }

  /// The adaptive threshold state (meaningful when the feature is enabled).
  const ThresholdController& threshold_controller() const noexcept {
    return threshold_;
  }

  /// Registers per-rung latency histograms, per-rung hit/miss counters and
  /// per-source counters (see obs/report.hpp for the naming scheme) and
  /// starts recording every completed frame's trace into them. The registry
  /// must outlive the pipeline.
  void attach_metrics(MetricsRegistry& metrics);

  /// Trace of the most recently completed frame (rungs visited, in order).
  /// Reused across frames: read it from the completion callback, before the
  /// next process() call resets it.
  const FrameTrace& last_trace() const noexcept { return trace_; }

 private:
  struct InFlight {
    Frame frame;
    MotionState motion = MotionState::kMajor;
    Callback done;
    GateDecision gate;                ///< set by the IMU rung
    SimDuration compute_latency = 0;  ///< accumulated CPU-active time
    double dnn_energy = 0.0;          ///< energy of a DNN run, when one ran
    FeatureVec features;              ///< filled by the cache rung
    bool features_ready = false;
  };

  void complete(ResultSource source, Label label, float confidence);
  /// Adds `d` to the frame's CPU-active time (excludes DNN and radio).
  void spend(SimDuration d) { inflight_->compute_latency += d; }
  void run_temporal_rung();
  void run_cache_rung();
  void run_local_cache_rung();
  void run_p2p_rung();
  void run_inference_rung();
  double compute_energy(ResultSource source) const;

  EventSimulator* sim_;
  PipelineConfig config_;
  const FeatureExtractor* extractor_;
  RecognitionModel* model_;
  ApproxCache* cache_;
  ExactCache* exact_cache_;
  PeerCacheService* peers_;
  Rng rng_;

  TemporalReuseDetector temporal_;
  MotionGate gate_;
  ThresholdController threshold_;

  bool busy_ = false;
  std::optional<InFlight> inflight_;
  std::uint64_t epoch_ = 0;  ///< guards stale async callbacks

  // Last delivered result (feeds the IMU fast path).
  std::optional<Prediction> last_result_;
  SimTime last_result_time_ = 0;
  /// Energy actually attributed to DNN runs is the model's own figure; the
  /// rest of the pipeline converts busy time via cpu_active_power_mw.
  Counter counters_;

  FrameTrace trace_;
  MetricsRegistry* metrics_ = nullptr;
  std::array<std::uint32_t, kRungCount> rung_latency_hist_{};
  std::array<std::uint32_t, kRungCount> rung_hit_counter_{};
  std::array<std::uint32_t, kRungCount> rung_miss_counter_{};
  std::array<std::uint32_t, kResultSourceCount> source_counter_{};
};

}  // namespace apx

#pragma once
// Pipeline configuration: which reuse signals are active and their cost
// constants. The evaluation's named configurations (NoCache, ExactCache,
// Approx-Local, +IMU, +Video, full system) are all instances of this.

#include "src/cache/approx_cache.hpp"
#include "src/core/threshold_controller.hpp"
#include "src/imu/gate.hpp"
#include "src/imu/motion_estimator.hpp"
#include "src/p2p/peer_cache.hpp"
#include "src/video/locality.hpp"

namespace apx {

/// Cache layer backing the pipeline.
enum class CacheMode {
  kNone,    ///< every frame runs the DNN (the NoCache baseline)
  kExact,   ///< quantized exact-match memoization (conventional baseline)
  kApprox,  ///< the approximate cache (the paper's system)
};

/// Full pipeline configuration.
struct PipelineConfig {
  CacheMode cache_mode = CacheMode::kApprox;

  bool enable_imu_gate = true;      ///< motion-scaled thresholds
  bool enable_imu_fastpath = true;  ///< stationary -> inherit last result
  bool enable_temporal = true;      ///< frame-diff keyframe reuse
  bool enable_p2p = true;           ///< peer lookup before DNN fallback
  /// Feedback-tune the similarity threshold from DNN-validated frames
  /// (extension beyond the poster; see threshold_controller.hpp).
  bool enable_adaptive_threshold = false;

  ApproxCacheConfig cache;
  MotionEstimatorParams motion;
  MotionGateParams gate;
  TemporalReuseParams temporal;
  ThresholdControllerParams threshold;

  /// Stationary fast path inherits the last result at most this long.
  SimDuration imu_fastpath_max_age = 2 * kSecond;
  /// Simulated cost of consulting the motion estimate (sensor hub read).
  SimDuration imu_check_latency = 100;  // 0.1 ms
  /// Active-CPU power draw used to convert pipeline latency to energy.
  double cpu_active_power_mw = 2000.0;
};

/// The named configurations T1/T2/F4/T3 sweep (DESIGN.md §3).
PipelineConfig make_nocache_config();
PipelineConfig make_exactcache_config();
PipelineConfig make_approx_local_config();   ///< cache only, no IMU/video/P2P
PipelineConfig make_approx_imu_config();     ///< + IMU gate & fast path
PipelineConfig make_approx_video_config();   ///< + temporal reuse
PipelineConfig make_full_system_config();    ///< everything incl. P2P
PipelineConfig make_adaptive_config();       ///< full + adaptive threshold

}  // namespace apx

#pragma once
// Pipeline configuration: which reuse rungs are active and their cost
// constants. The evaluation's named configurations (NoCache, ExactCache,
// Approx-Local, +IMU, +Video, full system) are all instances of this —
// each one is a ladder spec (see core/rungs/ladder.hpp for the grammar).

#include <string>
#include <string_view>

#include "src/cache/approx_cache.hpp"
#include "src/core/threshold_controller.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/imu/gate.hpp"
#include "src/imu/motion_estimator.hpp"
#include "src/p2p/peer_cache.hpp"
#include "src/video/locality.hpp"

namespace apx {

/// Warm-tier rung: a capacity-bounded bank of 8-bit-quantized per-class
/// prototypes (dnn/centroid + ann/quantize) scanned linearly before the
/// A-LSH lookup. Far cheaper than the local cache rung (no index walk, no
/// H-kNN vote) and answers the "seen this class recently and clearly"
/// frames at a fraction of the cost.
struct WarmTierParams {
  std::size_t max_prototypes = 256;  ///< bank capacity (one per label)
  /// A prototype answers only after this many DNN-validated observations
  /// (young means are still noisy).
  std::uint32_t min_support = 3;
  /// Absolute acceptance distance; 0 derives it from the local cache's
  /// H-kNN threshold as hknn.max_distance * distance_scale.
  float max_distance = 0.0f;
  /// Warm matches must be tighter than A-LSH matches: the derived
  /// threshold is scaled down by this factor.
  float distance_scale = 0.8f;
  /// Simulated scan cost: fixed overhead + one distance per prototype.
  SimDuration base_latency = 50;          // 50 us
  SimDuration per_prototype_latency = 1;  // 1 us per prototype
};

/// Region-reuse rung (DESIGN.md §11): diff the incoming frame against the
/// keyframe per grid block, splice the unchanged blocks' cached MiniCnn
/// activations back into the staged forward pass and recompute conv work
/// only for the changed blocks (plus the conv halo). The rung accelerates
/// feature extraction for the rungs below it; it never answers a frame.
struct RegionReuseParams {
  int grid = 4;              ///< blocks per side (2, 4 or 8: must divide
                             ///< every MiniCnn stage side)
  /// Changed-block fraction above which splicing is abandoned for a full
  /// staged forward (the bookkeeping would cost more than it saves).
  float max_changed = 0.5f;
  SimDuration ttl = 2 * kSecond;  ///< per-block activation staleness bound
  /// Per-block mean-abs-diff accepting reuse; same scale as the temporal
  /// rung's whole-frame threshold (both compare [0,1] grayscale).
  float block_diff_threshold = 0.045f;
  SimDuration check_latency = 500;  ///< simulated block-diff cost (0.5 ms)
};

/// Full pipeline configuration.
struct PipelineConfig {
  /// Declarative reuse-ladder spec ("imu,temporal,local,p2p,dnn"). When
  /// non-empty it is authoritative: the pipeline parses it and overwrites
  /// the per-rung flags below to match (see apply_ladder). When empty, the
  /// ladder is derived from the flags — the presets ship this way so tests
  /// and callers can keep toggling individual enable_* bits.
  std::string ladder;

  /// The cache-lookup rung: the approximate cache ("local", the paper's
  /// system) or quantized exact-match memoization ("exact", the
  /// conventional baseline). Mutually exclusive — they share the ladder's
  /// cache-lookup rank; neither set is the NoCache baseline.
  bool enable_local_cache = true;
  bool enable_exact_cache = false;

  bool enable_imu_gate = true;      ///< motion-scaled thresholds
  bool enable_imu_fastpath = true;  ///< stationary -> inherit last result
  bool enable_temporal = true;      ///< frame-diff keyframe reuse
  bool enable_regions = false;      ///< block-level activation reuse
  bool enable_warm_tier = false;    ///< quantized prototype scan before local
  bool enable_p2p = true;           ///< peer lookup before DNN fallback
  bool enable_edge = false;         ///< region edge cache after p2p
  /// Feedback-tune the similarity threshold from DNN-validated frames
  /// (extension beyond the poster; see threshold_controller.hpp).
  bool enable_adaptive_threshold = false;
  /// SQ8 candidate scan in the local cache's index (ladder token
  /// "local(q8)"): score LSH candidates on uint8 codes, re-rank the top
  /// cache.alsh.lsh.quantize.rerank_k exactly. Kept in sync with
  /// cache.alsh.lsh.quantize.enabled by apply_ladder and the runner; this
  /// flag is authoritative when both could disagree.
  bool enable_quantized_scan = false;

  ApproxCacheConfig cache;
  /// Region edge tier (ladder token "edge"); shards/capacity/ttl/
  /// error_budget are grammar-visible, the rest provisioning knobs.
  EdgeParams edge;
  MotionEstimatorParams motion;
  MotionGateParams gate;
  TemporalReuseParams temporal;
  /// Region rung (ladder token "regions"); grid/max_changed/ttl are
  /// grammar-visible, the rest provisioning knobs.
  RegionReuseParams regions;
  WarmTierParams warm;
  ThresholdControllerParams threshold;

  /// Stationary fast path inherits the last result at most this long.
  SimDuration imu_fastpath_max_age = 2 * kSecond;
  /// Simulated cost of consulting the motion estimate (sensor hub read).
  SimDuration imu_check_latency = 100;  // 0.1 ms
  /// Active-CPU power draw used to convert pipeline latency to energy.
  double cpu_active_power_mw = 2000.0;
};

/// The named configurations T1/T2/F4/T3 sweep (DESIGN.md §3). Each is a
/// ladder spec with the spec string cleared (flag-driven; see `ladder`).
PipelineConfig make_nocache_config();        ///< "dnn"
PipelineConfig make_exactcache_config();     ///< "exact,dnn"
PipelineConfig make_approx_local_config();   ///< "local,dnn"
PipelineConfig make_approx_imu_config();     ///< "imu,local,dnn"
PipelineConfig make_approx_video_config();   ///< "imu,temporal,local,dnn"
PipelineConfig make_full_system_config();    ///< "imu,temporal,local,p2p,dnn"
PipelineConfig make_adaptive_config();       ///< full + adaptive threshold
PipelineConfig make_edge_config();           ///< "imu,temporal,local,p2p,edge,dnn"

/// Config from an explicit ladder spec (`apxsim --ladder ...`). Unlike the
/// presets this keeps `ladder` set, so the spec stays authoritative.
/// Throws std::invalid_argument on a malformed spec.
PipelineConfig make_ladder_config(std::string_view spec);

}  // namespace apx

#pragma once
// Per-frame recognition outcome with full reuse provenance — the unit every
// experiment aggregates over.

#include <functional>

#include "src/dnn/model.hpp"
#include "src/util/clock.hpp"

namespace apx {

/// Which mechanism produced the frame's answer.
enum class ResultSource : std::uint8_t {
  kImuFastPath = 0,   ///< device stationary: inherited last confirmed result
  kTemporalReuse = 1, ///< frame-diff keyframe reuse
  kLocalCacheHit = 2, ///< approximate cache hit from locally held entries
  kPeerCacheHit = 3,  ///< hit enabled by a P2P lookup round-trip
  kFullInference = 4, ///< the DNN ran
  kWarmCacheHit = 5,  ///< quantized warm-tier prototype match
  kEdgeCacheHit = 6,  ///< hit served by the region edge cache
};

inline constexpr std::size_t kResultSourceCount = 7;

/// Printable name ("imu-fastpath", "temporal", ...).
const char* to_string(ResultSource source) noexcept;

/// One processed frame.
struct RecognitionResult {
  SimTime frame_time = 0;       ///< camera timestamp
  SimTime completion_time = 0;  ///< when the label became available
  Label label = kNoLabel;
  Label true_label = kNoLabel;
  bool correct = false;
  ResultSource source = ResultSource::kFullInference;
  SimDuration latency = 0;      ///< completion_time - frame_time
  double compute_energy_mj = 0; ///< on-device compute energy for this frame
};

}  // namespace apx

#include "src/core/rungs/regions.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/pipeline.hpp"
#include "src/features/extractor.hpp"

namespace apx {
namespace {

/// Splice depth is 0 (full staged forward), 1 (partial splice) or 2
/// (resumed at conv3 from a fully-cached stage 2).
std::span<const double> splice_depth_bounds() noexcept {
  static const double bounds[] = {0.0, 1.0, 2.0};
  return bounds;
}

int count_set(std::span<const std::uint8_t> mask) noexcept {
  int n = 0;
  for (const std::uint8_t v : mask) n += (v != 0);
  return n;
}

}  // namespace

RegionsRung::RegionsRung(const RungBuildContext& ctx)
    : extractor_(ctx.extractor),
      cnn_(ctx.extractor->staged_cnn()),
      matcher_(BlockMatchParams{ctx.config->regions.grid, MiniCnn::kInputSide,
                                ctx.config->regions.block_diff_threshold}),
      acts_(MiniCnn::plan(), ActivationCache::Params{
                                 ctx.config->regions.grid,
                                 ctx.config->regions.ttl}) {
  if (cnn_ == nullptr) {
    throw std::invalid_argument(
        "RegionsRung: the feature extractor has no staged CNN "
        "(the regions rung requires the cnn extractor)");
  }
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  changed_.resize(static_cast<std::size_t>(acts_.block_count()));
  expired_.resize(changed_.size());
  input_mask_.resize(plan.input.size() / 3);
  stage1_mask_.resize(
      static_cast<std::size_t>(plan.stage1.width) * plan.stage1.height);
  stage2_mask_.resize(
      static_cast<std::size_t>(plan.stage2.width) * plan.stage2.height);
}

void RegionsRung::register_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  reused_ = metrics.counter("regions/blocks_reused");
  recomputed_ = metrics.counter("regions/blocks_recomputed");
  cache_bytes_ = metrics.counter("regions/cache_bytes");
  splice_depth_ =
      metrics.histogram("regions/splice_depth", splice_depth_bounds());
}

void RegionsRung::run(ReusePipeline& host) {
  if (!host.config().enable_regions) {
    host.advance();
    return;
  }
  FrameContext& ctx = host.frame_ctx();
  if (ctx.features_ready) {
    host.advance();
    return;
  }
  if (!ctx.gate.allow_temporal_reuse) {
    // Major motion: per-block diffs against the keyframe are meaningless,
    // and the cached activations describe a scene no longer in view.
    matcher_.invalidate();
    acts_.invalidate();
  }
  const RegionReuseParams& p = host.config().regions;
  host.trace().begin_span(Rung::kRegions, host.sim().now());
  // The real block matching runs synchronously here (like the temporal
  // rung's frame diff); the simulated clock pays check_latency for it.
  changed_count_ = matcher_.classify(ctx.frame.image, changed_);
  if (acts_.valid()) {
    // A block past its ttl must be recomputed even when its pixels still
    // match — the staleness bound on how long one tile can keep echoing.
    acts_.expire_blocks(host.sim().now(), expired_);
    for (std::size_t b = 0; b < changed_.size(); ++b) {
      if (expired_[b] != 0 && changed_[b] == 0) {
        changed_[b] = 1;
        ++changed_count_;
      }
    }
  }
  const int total = acts_.block_count();
  full_ = !acts_.valid() ||
          static_cast<float>(changed_count_) >
              p.max_changed * static_cast<float>(total);
  SimDuration cost = p.check_latency;
  if (full_) {
    cost += extractor_->latency();
  } else {
    // Price the partial forward by the conv MACs it actually runs: dirty
    // stage-1/stage-2 pixels (changed blocks dilated by the conv halo,
    // pooled down) plus all of conv3.
    const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
    acts_.block_to_pixel_mask(changed_, MiniCnn::kInputSide, input_mask_);
    MiniCnn::propagate_dirty(input_mask_, plan.input.width, plan.input.height,
                             stage1_mask_);
    MiniCnn::propagate_dirty(stage1_mask_, plan.stage1.width,
                             plan.stage1.height, stage2_mask_);
    const double f1 =
        static_cast<double>(count_set(stage1_mask_)) /
        (static_cast<double>(plan.stage1.width) * plan.stage1.height);
    const double f2 =
        static_cast<double>(count_set(stage2_mask_)) /
        (static_cast<double>(plan.stage2.width) * plan.stage2.height);
    const double mac_share =
        (plan.conv_macs[0] * f1 + plan.conv_macs[1] * f2 + plan.conv_macs[2]) /
        plan.total_macs();
    cost += static_cast<SimDuration>(
        static_cast<double>(extractor_->latency()) * mac_share);
  }
  host.spend(cost);
  host.schedule(cost, [this, &host] { complete(host); });
}

void RegionsRung::complete(ReusePipeline& host) {
  FrameContext& ctx = host.frame_ctx();
  const int total = acts_.block_count();
  int depth = 0;
  cnn_->prepare_input(ctx.frame.image, state_);
  if (full_) {
    cnn_->forward(state_, /*from_stage=*/0, ctx.features, nullptr);
    std::fill(changed_.begin(), changed_.end(), std::uint8_t{1});
    changed_count_ = total;
  } else {
    const MiniCnn::SpliceStats stats =
        cnn_->forward_spliced(state_, acts_.stage1(), acts_.stage2(),
                              stage1_mask_, stage2_mask_, ctx.features);
    depth = stats.resume_stage;
  }
  ctx.features_ready = true;
  // Refresh the reference pixels and cached tiles of exactly the recomputed
  // blocks; reused blocks keep the keyframe they were spliced from, so
  // slow drift cannot accumulate unseen.
  matcher_.update(changed_);
  acts_.install(state_.stage1, state_.stage2, changed_, host.sim().now());
  if (metrics_ != nullptr) {
    metrics_->inc(recomputed_, static_cast<std::uint64_t>(changed_count_));
    metrics_->inc(reused_, static_cast<std::uint64_t>(total - changed_count_));
    metrics_->record(splice_depth_, static_cast<double>(depth));
    metrics_->set(cache_bytes_, acts_.bytes());
  }
  // "Hit" means the frame actually spliced cached activations; a full
  // forward (cold cache, too many changed blocks) is the rung's miss.
  host.trace().end_span(full_ ? RungOutcome::kMiss : RungOutcome::kHit,
                        host.sim().now());
  host.advance();
}

std::unique_ptr<ReuseRung> make_regions_rung(const RungBuildContext& ctx) {
  return std::make_unique<RegionsRung>(ctx);
}

}  // namespace apx

#include "src/core/rungs/warm_tier.hpp"

#include <algorithm>
#include <limits>

#include "src/core/pipeline.hpp"
#include "src/features/extractor.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

void WarmTierRung::run(ReusePipeline& host) {
  if (quantized_.empty()) {
    // Cold bank: nothing to scan, pay nothing (the downstream cache rung
    // will do the extraction).
    host.advance();
    return;
  }
  const WarmTierParams& params = host.config().warm;
  host.trace().begin_span(Rung::kWarm, host.sim().now());
  const FrameContext& ctx = host.frame_ctx();
  const SimDuration extract_cost =
      ctx.features_ready ? 0 : extractor_->latency();
  const SimDuration cost =
      extract_cost + params.base_latency +
      params.per_prototype_latency *
          static_cast<SimDuration>(quantized_.size());
  host.spend(cost);
  host.schedule(cost, [this, &host] {
    FrameContext& frame = host.frame_ctx();
    if (!frame.features_ready) {
      frame.features = extractor_->extract(frame.frame.image);
      frame.features_ready = true;
    }
    Label best = kNoLabel;
    float best_distance = std::numeric_limits<float>::max();
    std::uint32_t best_support = 0;
    for (const auto& [label, proto] : quantized_) {
      const float d = l2(frame.features, proto.recon);
      if (d < best_distance) {
        best_distance = d;
        best = label;
        best_support = proto.support;
      }
    }
    const WarmTierParams& p = host.config().warm;
    const float base_limit =
        p.max_distance > 0.0f
            ? p.max_distance
            : host.config().cache.hknn.max_distance * p.distance_scale;
    const float limit = base_limit * frame.gate.threshold_scale;
    host.trace().annotate_lookup(
        static_cast<std::uint32_t>(quantized_.size()), best_distance);
    if (best != kNoLabel && best_distance <= limit &&
        best_support >= p.min_support) {
      const float confidence =
          limit > 0.0f
              ? std::clamp(1.0f - best_distance / limit, 0.0f, 1.0f)
              : 0.0f;
      host.trace().end_span(RungOutcome::kHit, host.sim().now());
      host.finish(ResultSource::kWarmCacheHit, best, confidence);
      return;
    }
    host.trace().end_span(RungOutcome::kMiss, host.sim().now());
    host.advance();
  });
}

void WarmTierRung::on_result(ReusePipeline& host,
                             const RecognitionResult& result) {
  // Only DNN-validated frames teach the bank: reuse hits echoing a cached
  // label must not inflate their own prototype's support.
  if (result.source != ResultSource::kFullInference) return;
  const FrameContext& ctx = host.frame_ctx();
  if (!ctx.features_ready || result.label == kNoLabel) return;
  const CentroidBank::ObserveOutcome outcome =
      bank_.observe(ctx.features, result.label);
  if (outcome.evicted != kNoLabel) quantized_.erase(outcome.evicted);
  if (outcome.updated != kNoLabel) {
    const CentroidBank::Prototype* proto = bank_.find(outcome.updated);
    QuantizedProto q;
    q.codes = quantize(proto->mean);
    q.recon = dequantize(q.codes);
    q.support = proto->support;
    quantized_[outcome.updated] = std::move(q);
  }
}

std::unique_ptr<ReuseRung> make_warm_tier_rung(const RungBuildContext& ctx) {
  return std::make_unique<WarmTierRung>(ctx);
}

}  // namespace apx

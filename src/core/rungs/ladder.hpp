#pragma once
// Declarative ladder specs and the rung registry/factory.
//
// Grammar: a spec is a comma-separated list of rung tokens, cheapest rung
// first, ending in "dnn". A token may carry a parenthesized argument list
// drawn from the rung's registered, typed argument set (token-level commas
// split only outside parentheses):
//
//   spec    := token ("," token)*
//   token   := name [ "(" arglist ")" ]
//   arglist := arg ("," arg)*
//   arg     := key [ "=" value ]
//   name    := "imu" | "temporal" | "regions" | "warm" | "local" | "exact"
//            | "p2p" | "edge" | "dnn"
//
// Registered arguments: "local(q8)" — the SQ8 quantized candidate scan in
// the local cache's index (DESIGN.md §8) — the region rung's
// "regions(grid=4,max_changed=0.5,ttl=2s)" (DESIGN.md §11), and the edge
// tier's "edge(shards=4,capacity=2048,ttl=30s,error_budget=0.25)"
// (DESIGN.md §10).
// Values are validated by the argument's registered kind: flags take no
// value; uints are positive integers; durations are positive integers with
// an optional s/ms/us suffix (bare = microseconds); fractions are floats
// in [0, 1].
//
// Validation (LadderSpec::parse throws std::invalid_argument):
//   * every token must be registered, non-empty, and appear at most once;
//   * tokens must appear in strictly increasing ladder rank — this both
//     enforces cheapest-first order and rejects "local" + "exact" together
//     (they share the cache-lookup rank: one lookup path, two rung types);
//   * every argument key must be registered for the named rung and appear
//     at most once, with a value matching its kind ("local(q9)",
//     "dnn(q8)", "edge(shards=0)" and "edge(ttl=abc)" are all rejected,
//     as is any malformed form);
//   * the spec must end with "dnn" (the ladder's unconditional answerer);
//   * "p2p" requires "local" (the P2P rung re-votes the approximate cache).
//
// The named make_*_config() presets are ladder specs (see config.cpp), and
// `apxsim --ladder 'imu,temporal,warm,local(q8),p2p,edge(shards=4),dnn'`
// runs any valid spec.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/rungs/rung.hpp"

namespace apx {

/// A parsed, validated ladder composition.
struct LadderSpec {
  std::vector<std::string> tokens;  ///< base names, rank order, ends "dnn"
  /// Parallel to `tokens`: the token's parenthesized argument, "" if none.
  std::vector<std::string> args;

  /// Parses and validates a spec string (grammar above); throws
  /// std::invalid_argument with a actionable message on any violation.
  static LadderSpec parse(std::string_view text);

  /// Derives the spec equivalent to a flag-driven config — the inverse of
  /// apply_ladder, used when PipelineConfig::ladder is empty.
  static LadderSpec from_config(const PipelineConfig& config);

  /// Canonical comma-joined form (round-trips through parse()).
  std::string to_string() const;

  /// `token` is the base name — has("local") is true for "local(q8)" too.
  bool has(std::string_view token) const noexcept;

  /// The canonical argument list carried by base-name `token` ("" when
  /// absent or bare): "q8" for "local(q8)", "shards=4,ttl=30s" for the
  /// corresponding edge token.
  std::string_view arg(std::string_view token) const noexcept;

  /// The value of the key=value argument `key` on base-name `token` (""
  /// when the token, the key, or a value is absent):
  /// arg_value("edge", "shards") == "4" for "edge(shards=4,ttl=30s)".
  std::string_view arg_value(std::string_view token,
                             std::string_view key) const noexcept;

  /// Whether `token` carries the argument `key` (flag or key=value form).
  bool has_arg(std::string_view token, std::string_view key) const noexcept;
};

/// Makes `spec` authoritative on `config`: overwrites every rung-coupled
/// field (enable_* flags, cache_mode) to match the spec and stores the
/// canonical spec string in config.ladder. Provisioning code (sim/runner)
/// keys off those flags, so they can never drift from the ladder.
void apply_ladder(PipelineConfig& config, const LadderSpec& spec);

/// Parses a grammar duration value: a positive integer with an optional
/// s/ms/us suffix ("30s", "500ms", "250us"; bare digits are microseconds).
/// Throws std::invalid_argument on malformed or non-positive input.
SimDuration parse_spec_duration(std::string_view value);

/// Canonical grammar form of a duration — the largest unit that divides it
/// exactly ("30s", "1500ms", "250us"). Inverse of parse_spec_duration.
std::string format_spec_duration(SimDuration d);

/// Token -> (ladder rank, factory). Built-in rungs self-register in the
/// singleton's constructor; extensions may add() more before any parse.
class RungRegistry {
 public:
  using Factory = std::unique_ptr<ReuseRung> (*)(const RungBuildContext&);

  /// One typed argument a rung accepts in its "name(arglist)" spec token.
  struct ArgSpec {
    /// Value validation applied at parse time.
    enum class Kind {
      kFlag,      ///< bare key, no value ("q8")
      kUint,      ///< positive integer ("shards=4")
      kDuration,  ///< positive integer + optional s/ms/us suffix ("ttl=30s")
      kFraction,  ///< float in [0, 1] ("error_budget=0.25")
      kRatio,     ///< float > 1 ("c=2": QALSH approximation ratio)
    };
    std::string key;
    Kind kind = Kind::kFlag;
  };

  struct Entry {
    std::string name;
    int rank = 0;  ///< ladder position class; specs must strictly increase
    Factory factory = nullptr;
    /// Arguments this rung accepts in "name(arglist)" spec tokens. Empty
    /// for most rungs; "local" registers {{"q8"}}, "edge" its four knobs.
    std::vector<ArgSpec> allowed_args;
  };

  static RungRegistry& instance();

  /// Registers a rung type; throws std::logic_error on a duplicate name.
  void add(std::string name, int rank, Factory factory,
           std::vector<ArgSpec> allowed_args = {});

  const Entry* find(std::string_view name) const noexcept;

  /// Registered tokens in rank order (ties in registration order).
  std::vector<std::string> names() const;

 private:
  RungRegistry();

  std::vector<Entry> entries_;
};

/// Instantiates the rung chain for `spec`. The IMU rung doubles as the
/// frame-admission hop, so it is always first — even for specs without
/// "imu", where it runs inert (zero cost, no span); this keeps the event
/// schedule identical across every configuration.
std::vector<std::unique_ptr<ReuseRung>> build_ladder(
    const LadderSpec& spec, const RungBuildContext& ctx);

}  // namespace apx

#pragma once
// Declarative ladder specs and the rung registry/factory.
//
// Grammar: a spec is a comma-separated list of rung tokens, cheapest rung
// first, ending in "dnn". A token may carry one parenthesized argument
// from the rung's registered argument set:
//
//   spec  := token ("," token)*
//   token := name [ "(" arg ")" ]
//   name  := "imu" | "temporal" | "warm" | "local" | "exact" | "p2p" | "dnn"
//
// Today the only registered argument is "local(q8)" — the SQ8 quantized
// candidate scan in the local cache's index (DESIGN.md §8).
//
// Validation (LadderSpec::parse throws std::invalid_argument):
//   * every token must be registered, non-empty, and appear at most once;
//   * tokens must appear in strictly increasing ladder rank — this both
//     enforces cheapest-first order and rejects "local" + "exact" together
//     (they share the cache-lookup rank: one lookup path, two rung types);
//   * an argument must be in the named rung's registered argument set
//     ("local(q9)" and "dnn(q8)" are rejected, as is any malformed form);
//   * the spec must end with "dnn" (the ladder's unconditional answerer);
//   * "p2p" requires "local" (the P2P rung re-votes the approximate cache).
//
// The named make_*_config() presets are ladder specs (see config.cpp), and
// `apxsim --ladder imu,temporal,warm,local(q8),p2p,dnn` runs any valid
// spec.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/rungs/rung.hpp"

namespace apx {

/// A parsed, validated ladder composition.
struct LadderSpec {
  std::vector<std::string> tokens;  ///< base names, rank order, ends "dnn"
  /// Parallel to `tokens`: the token's parenthesized argument, "" if none.
  std::vector<std::string> args;

  /// Parses and validates a spec string (grammar above); throws
  /// std::invalid_argument with a actionable message on any violation.
  static LadderSpec parse(std::string_view text);

  /// Derives the spec equivalent to a flag-driven config — the inverse of
  /// apply_ladder, used when PipelineConfig::ladder is empty.
  static LadderSpec from_config(const PipelineConfig& config);

  /// Canonical comma-joined form (round-trips through parse()).
  std::string to_string() const;

  /// `token` is the base name — has("local") is true for "local(q8)" too.
  bool has(std::string_view token) const noexcept;

  /// The argument carried by base-name `token` ("" when absent or bare).
  std::string_view arg(std::string_view token) const noexcept;
};

/// Makes `spec` authoritative on `config`: overwrites every rung-coupled
/// field (enable_* flags, cache_mode) to match the spec and stores the
/// canonical spec string in config.ladder. Provisioning code (sim/runner)
/// keys off those flags, so they can never drift from the ladder.
void apply_ladder(PipelineConfig& config, const LadderSpec& spec);

/// Token -> (ladder rank, factory). Built-in rungs self-register in the
/// singleton's constructor; extensions may add() more before any parse.
class RungRegistry {
 public:
  using Factory = std::unique_ptr<ReuseRung> (*)(const RungBuildContext&);

  struct Entry {
    std::string name;
    int rank = 0;  ///< ladder position class; specs must strictly increase
    Factory factory = nullptr;
    /// Arguments this rung accepts in "name(arg)" spec tokens. Empty for
    /// most rungs; "local" registers {"q8"}.
    std::vector<std::string> allowed_args;
  };

  static RungRegistry& instance();

  /// Registers a rung type; throws std::logic_error on a duplicate name.
  void add(std::string name, int rank, Factory factory,
           std::vector<std::string> allowed_args = {});

  const Entry* find(std::string_view name) const noexcept;

  /// Registered tokens in rank order (ties in registration order).
  std::vector<std::string> names() const;

 private:
  RungRegistry();

  std::vector<Entry> entries_;
};

/// Instantiates the rung chain for `spec`. The IMU rung doubles as the
/// frame-admission hop, so it is always first — even for specs without
/// "imu", where it runs inert (zero cost, no span); this keeps the event
/// schedule identical across every configuration.
std::vector<std::unique_ptr<ReuseRung>> build_ladder(
    const LadderSpec& spec, const RungBuildContext& ctx);

}  // namespace apx

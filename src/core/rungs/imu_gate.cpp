#include "src/core/rungs/imu_gate.hpp"

#include "src/core/pipeline.hpp"

namespace apx {

void ImuGateRung::run(ReusePipeline& host) {
  const PipelineConfig& cfg = host.config();
  const bool active = cfg.enable_imu_gate || cfg.enable_imu_fastpath;
  const SimDuration cost = active ? cfg.imu_check_latency : 0;
  if (active) host.trace().begin_span(Rung::kImuGate, host.sim().now());
  host.spend(cost);
  host.schedule(cost, [this, &host] {
    const PipelineConfig& config = host.config();
    FrameContext& ctx = host.frame_ctx();
    GateDecision gate{true, 1.0f};
    if (config.enable_imu_gate) gate = gate_.decide(ctx.motion);
    if (config.enable_adaptive_threshold) {
      // The motion gate and the feedback controller compose: the gate is a
      // per-frame modulation, the controller a slow per-deployment trim.
      gate.threshold_scale *= host.threshold().scale();
    }
    ctx.gate = gate;

    if (config.enable_imu_fastpath &&
        ctx.motion == MotionState::kStationary &&
        host.last_result().has_value() &&
        host.last_result()->label != kNoLabel &&
        host.sim().now() - host.last_result_time() <=
            config.imu_fastpath_max_age) {
      host.trace().end_span(RungOutcome::kHit, host.sim().now());
      host.finish(ResultSource::kImuFastPath, host.last_result()->label,
                  host.last_result()->confidence);
      return;
    }
    host.trace().end_span(RungOutcome::kMiss, host.sim().now());
    host.advance();
  });
}

std::unique_ptr<ReuseRung> make_imu_gate_rung(const RungBuildContext& ctx) {
  return std::make_unique<ImuGateRung>(ctx);
}

}  // namespace apx

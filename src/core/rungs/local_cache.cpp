#include "src/core/rungs/local_cache.hpp"

#include "src/core/pipeline.hpp"
#include "src/features/extractor.hpp"

namespace apx {

void LocalCacheRung::run(ReusePipeline& host) {
  host.trace().begin_span(Rung::kLocalCache, host.sim().now());
  const SimDuration extract_cost =
      host.frame_ctx().features_ready ? 0 : extractor_->latency();
  host.spend(extract_cost);
  host.schedule(extract_cost, [this, &host] {
    FrameContext& ctx = host.frame_ctx();
    if (!ctx.features_ready) {
      ctx.features = extractor_->extract(ctx.frame.image);
      ctx.features_ready = true;
    }
    const CacheResult res = cache_->lookup(
        {.features = ctx.features,
         .now = host.sim().now(),
         .threshold_scale = ctx.gate.threshold_scale,
         .trace = &host.trace()});
    host.spend(res.latency);
    host.schedule(res.latency, [&host, vote = res.vote] {
      if (vote.has_value()) {
        host.trace().end_span(RungOutcome::kHit, host.sim().now());
        host.finish(ResultSource::kLocalCacheHit, vote->label,
                    vote->homogeneity);
        return;
      }
      host.trace().end_span(RungOutcome::kMiss, host.sim().now());
      host.advance();
    });
  });
}

std::unique_ptr<ReuseRung> make_local_cache_rung(
    const RungBuildContext& ctx) {
  return std::make_unique<LocalCacheRung>(ctx);
}

}  // namespace apx

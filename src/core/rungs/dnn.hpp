#pragma once
// Bottom rung: full DNN inference. Always answers (its span is a hit by
// construction), feeds fresh results back into whichever cache rungs are
// in the ladder, and drives the adaptive-threshold controller's
// validation events.

#include "src/cache/approx_cache.hpp"
#include "src/cache/exact_cache.hpp"
#include "src/core/rungs/ladder.hpp"
#include "src/core/rungs/rung.hpp"

namespace apx {

class DnnRung final : public ReuseRung {
 public:
  /// Cache pointers are wired only when the corresponding rung is in the
  /// ladder — results feed the rungs that exist, nothing else.
  explicit DnnRung(const RungBuildContext& ctx)
      : model_(ctx.model),
        cache_(ctx.spec->has("local") ? ctx.cache : nullptr),
        exact_(ctx.spec->has("exact") ? ctx.exact_cache : nullptr) {}

  std::string_view name() const noexcept override { return "dnn"; }
  Rung trace_rung() const noexcept override { return Rung::kDnn; }
  void run(ReusePipeline& host) override;

 private:
  RecognitionModel* model_;
  ApproxCache* cache_;
  ExactCache* exact_;
};

std::unique_ptr<ReuseRung> make_dnn_rung(const RungBuildContext& ctx);

}  // namespace apx

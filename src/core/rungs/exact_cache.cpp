#include "src/core/rungs/exact_cache.hpp"

#include "src/core/pipeline.hpp"
#include "src/features/extractor.hpp"

namespace apx {

void ExactCacheRung::run(ReusePipeline& host) {
  host.trace().begin_span(Rung::kLocalCache, host.sim().now());
  const SimDuration extract_cost =
      host.frame_ctx().features_ready ? 0 : extractor_->latency();
  host.spend(extract_cost);
  host.schedule(extract_cost, [this, &host] {
    FrameContext& ctx = host.frame_ctx();
    if (!ctx.features_ready) {
      ctx.features = extractor_->extract(ctx.frame.image);
      ctx.features_ready = true;
    }
    const auto hit = exact_->lookup(ctx.features);
    const SimDuration cost = exact_->lookup_latency();
    host.spend(cost);
    host.schedule(cost, [&host, hit] {
      if (hit.has_value()) {
        host.trace().end_span(RungOutcome::kHit, host.sim().now());
        // An exact match is a perfect key collision: full confidence.
        host.finish(ResultSource::kLocalCacheHit, *hit, 1.0f);
        return;
      }
      host.trace().end_span(RungOutcome::kMiss, host.sim().now());
      host.advance();
    });
  });
}

std::unique_ptr<ReuseRung> make_exact_cache_rung(
    const RungBuildContext& ctx) {
  return std::make_unique<ExactCacheRung>(ctx);
}

}  // namespace apx

#pragma once
// The rung plugin interface. The reuse ladder is data: a ReusePipeline
// holds an ordered vector of ReuseRung instances built from a LadderSpec
// (see ladder.hpp), and each rung implements one tier of the poster's
// cheapest-first cascade. A rung either answers the frame
// (host.finish(...)) or passes it down (host.advance()); asynchronous cost
// is paid through host.schedule(), which epoch-guards the continuation
// against the frame having been answered elsewhere.
//
// Rungs talk to the pipeline exclusively through the host's rung-facing
// API (pipeline.hpp): the simulator clock, the frame context, the trace,
// the shared RNG and the adaptive-threshold controller. They never touch
// each other directly — inter-rung dataflow goes through FrameContext
// (e.g. features extracted by the warm tier are reused by the local cache
// rung via `features_ready`).

#include <functional>
#include <memory>
#include <string_view>

#include "src/core/config.hpp"
#include "src/core/result.hpp"
#include "src/obs/frame_trace.hpp"
#include "src/video/stream.hpp"

namespace apx {

class ReusePipeline;
class MetricsRegistry;
class FeatureExtractor;
class RecognitionModel;
class ApproxCache;
class ExactCache;
class PeerCacheService;
class EdgeClient;
struct LadderSpec;

/// Everything the ladder knows about the frame in flight. Replaces the old
/// pipeline-private InFlight blob so rungs can share state explicitly.
struct FrameContext {
  Frame frame;
  MotionState motion = MotionState::kMajor;
  std::function<void(const RecognitionResult&)> done;
  GateDecision gate;                ///< set by the IMU rung
  SimDuration compute_latency = 0;  ///< accumulated CPU-active time
  double dnn_energy = 0.0;          ///< energy of a DNN run, when one ran
  FeatureVec features;              ///< filled by the first feature-needing rung
  bool features_ready = false;
  std::size_t rung_index = 0;       ///< ladder position currently running
};

/// Collaborators available to rung factories. Pointers may be null when the
/// corresponding subsystem is not provisioned; the ladder validation
/// (pipeline ctor) rejects specs whose rungs need a missing collaborator.
struct RungBuildContext {
  const PipelineConfig* config = nullptr;
  const LadderSpec* spec = nullptr;
  const FeatureExtractor* extractor = nullptr;
  RecognitionModel* model = nullptr;
  ApproxCache* cache = nullptr;
  ExactCache* exact_cache = nullptr;
  PeerCacheService* peers = nullptr;
  EdgeClient* edge = nullptr;
};

/// One tier of the reuse ladder.
class ReuseRung {
 public:
  virtual ~ReuseRung() = default;

  /// The ladder-spec token ("imu", "temporal", "warm", "local", ...).
  virtual std::string_view name() const noexcept = 0;

  /// The trace/metrics rung this tier reports under. Distinct rung types
  /// may share one (the exact-cache rung reports as the local-cache rung —
  /// both are "the cache lookup" to the per-rung breakdown).
  virtual Rung trace_rung() const noexcept = 0;

  /// Tries to answer the in-flight frame. Must eventually call either
  /// host.finish(...) or host.advance() (possibly from a scheduled
  /// continuation).
  virtual void run(ReusePipeline& host) = 0;

  /// Completion hook: every rung observes the frame's final result before
  /// the context is torn down (keyframe refresh, warm-tier learning).
  virtual void on_result(ReusePipeline& host,
                         const RecognitionResult& result) {
    (void)host;
    (void)result;
  }

  /// A ResultSource name this rung can answer with beyond the schema
  /// baseline (nullptr for none) — its counter is registered when the rung
  /// is in the ladder.
  virtual const char* extra_source() const noexcept { return nullptr; }

  /// Subsystem instruments beyond the standard per-rung set (the regions
  /// rung's block counters, for example). Called whenever the pipeline
  /// (re-)registers instruments — once at construction against the internal
  /// registry and again on every attach_metrics — so implementations must
  /// re-resolve their handles against `metrics` each call.
  virtual void register_metrics(MetricsRegistry& metrics) { (void)metrics; }
};

}  // namespace apx

#pragma once
// Region-reuse rung (DESIGN.md §11): block-level partial-result reuse over
// the staged MiniCnn forward pass. The rung diffs the incoming frame
// against the keyframe per grid block (BlockKeyframeTracker), splices the
// unchanged blocks' cached stage-1/stage-2 activations (ActivationCache)
// back into the forward pass, and recomputes conv work only for the
// changed blocks plus the 1-pixel halo a 3x3 conv needs — resuming from
// the deepest fully-cached stage when nothing changed at all. This is the
// DeepCache-lineage tier below every label-reuse rung: it cannot answer a
// frame, it makes the feature extraction the rungs below depend on cheaper
// (they see features_ready and skip the extractor's full latency).
//
// The simulated cost is the extractor latency scaled by the fraction of
// conv multiply-accumulates actually recomputed (MiniCnn::plan()), plus a
// fixed block-diff check — the same honesty rule as every other rung.

#include <cstdint>
#include <vector>

#include "src/core/rungs/rung.hpp"
#include "src/dnn/activation_cache.hpp"
#include "src/obs/metrics.hpp"
#include "src/video/locality.hpp"

namespace apx {

class RegionsRung final : public ReuseRung {
 public:
  /// Throws std::invalid_argument when the extractor has no staged CNN or
  /// the configured grid does not divide every stage side.
  explicit RegionsRung(const RungBuildContext& ctx);

  std::string_view name() const noexcept override { return "regions"; }
  Rung trace_rung() const noexcept override { return Rung::kRegions; }
  void run(ReusePipeline& host) override;
  void register_metrics(MetricsRegistry& metrics) override;

 private:
  void complete(ReusePipeline& host);

  const FeatureExtractor* extractor_;
  const MiniCnn* cnn_;
  BlockKeyframeTracker matcher_;
  ActivationCache acts_;
  MiniCnn::ForwardState state_;  ///< reused across frames (zero steady-state
                                 ///< allocation)
  // Per-frame masks, sized once in the ctor.
  std::vector<std::uint8_t> changed_;      ///< blocks recomputed this frame
  std::vector<std::uint8_t> expired_;      ///< blocks past the ttl
  std::vector<std::uint8_t> input_mask_;   ///< 32x32 changed input pixels
  std::vector<std::uint8_t> stage1_mask_;  ///< 16x16 dirty stage-1 pixels
  std::vector<std::uint8_t> stage2_mask_;  ///< 8x8 dirty stage-2 pixels
  bool full_ = true;        ///< this frame takes the full staged forward
  int changed_count_ = 0;   ///< blocks recomputed this frame

  MetricsRegistry* metrics_ = nullptr;
  MetricsRegistry::CounterId reused_ = 0;
  MetricsRegistry::CounterId recomputed_ = 0;
  MetricsRegistry::CounterId cache_bytes_ = 0;
  MetricsRegistry::HistogramId splice_depth_ = 0;
};

std::unique_ptr<ReuseRung> make_regions_rung(const RungBuildContext& ctx);

}  // namespace apx

#include "src/core/rungs/ladder.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/rungs/dnn.hpp"
#include "src/core/rungs/exact_cache.hpp"
#include "src/core/rungs/imu_gate.hpp"
#include "src/core/rungs/local_cache.hpp"
#include "src/core/rungs/p2p.hpp"
#include "src/core/rungs/temporal.hpp"
#include "src/core/rungs/warm_tier.hpp"

namespace apx {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view text, const std::string& why) {
  throw std::invalid_argument("ladder spec '" + std::string(text) +
                              "': " + why);
}

}  // namespace

LadderSpec LadderSpec::parse(std::string_view text) {
  const RungRegistry& registry = RungRegistry::instance();
  LadderSpec spec;
  int last_rank = -1;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view token = trim(text.substr(pos, comma - pos));
    if (token.empty()) bad_spec(text, "empty rung token");
    const RungRegistry::Entry* entry = registry.find(token);
    if (entry == nullptr) {
      bad_spec(text, "unknown rung '" + std::string(token) + "'");
    }
    if (spec.has(token)) {
      bad_spec(text, "duplicate rung '" + std::string(token) + "'");
    }
    if (entry->rank <= last_rank) {
      // Covers both cheapest-first order violations and mutually exclusive
      // same-rank rungs (local + exact: one cache-lookup slot).
      bad_spec(text, "rung '" + std::string(token) +
                         "' out of ladder order (cheapest first, at most "
                         "one cache rung)");
    }
    last_rank = entry->rank;
    spec.tokens.emplace_back(token);
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  if (spec.tokens.back() != "dnn") {
    bad_spec(text, "must end with 'dnn' (the unconditional answerer)");
  }
  if (spec.has("p2p") && !spec.has("local")) {
    bad_spec(text,
             "'p2p' requires 'local' (the P2P rung re-votes the local "
             "approximate cache)");
  }
  return spec;
}

LadderSpec LadderSpec::from_config(const PipelineConfig& config) {
  LadderSpec spec;
  if (config.enable_imu_gate || config.enable_imu_fastpath) {
    spec.tokens.emplace_back("imu");
  }
  if (config.enable_temporal) spec.tokens.emplace_back("temporal");
  if (config.enable_warm_tier) spec.tokens.emplace_back("warm");
  if (config.cache_mode == CacheMode::kApprox) {
    spec.tokens.emplace_back("local");
    if (config.enable_p2p) spec.tokens.emplace_back("p2p");
  } else if (config.cache_mode == CacheMode::kExact) {
    spec.tokens.emplace_back("exact");
  }
  spec.tokens.emplace_back("dnn");
  return spec;
}

std::string LadderSpec::to_string() const {
  std::string out;
  for (const std::string& token : tokens) {
    if (!out.empty()) out += ',';
    out += token;
  }
  return out;
}

bool LadderSpec::has(std::string_view token) const noexcept {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

void apply_ladder(PipelineConfig& config, const LadderSpec& spec) {
  const bool imu = spec.has("imu");
  config.enable_imu_gate = imu;
  config.enable_imu_fastpath = imu;
  config.enable_temporal = spec.has("temporal");
  config.enable_warm_tier = spec.has("warm");
  config.enable_p2p = spec.has("p2p");
  config.cache_mode = spec.has("local")   ? CacheMode::kApprox
                      : spec.has("exact") ? CacheMode::kExact
                                          : CacheMode::kNone;
  config.ladder = spec.to_string();
}

RungRegistry::RungRegistry() {
  add("imu", 0, &make_imu_gate_rung);
  add("temporal", 1, &make_temporal_rung);
  add("warm", 2, &make_warm_tier_rung);
  add("local", 3, &make_local_cache_rung);
  add("exact", 3, &make_exact_cache_rung);
  add("p2p", 4, &make_p2p_rung);
  add("dnn", 5, &make_dnn_rung);
}

RungRegistry& RungRegistry::instance() {
  static RungRegistry registry;
  return registry;
}

void RungRegistry::add(std::string name, int rank, Factory factory) {
  if (find(name) != nullptr) {
    throw std::logic_error("RungRegistry: duplicate rung '" + name + "'");
  }
  entries_.push_back(Entry{std::move(name), rank, factory});
}

const RungRegistry::Entry* RungRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> RungRegistry::names() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->rank < b->rank;
                   });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (const Entry* entry : sorted) out.push_back(entry->name);
  return out;
}

std::vector<std::unique_ptr<ReuseRung>> build_ladder(
    const LadderSpec& spec, const RungBuildContext& ctx) {
  const RungRegistry& registry = RungRegistry::instance();
  std::vector<std::unique_ptr<ReuseRung>> rungs;
  rungs.reserve(spec.tokens.size() + 1);
  rungs.push_back(registry.find("imu")->factory(ctx));
  for (const std::string& token : spec.tokens) {
    if (token == "imu") continue;  // the entry rung above covers it
    rungs.push_back(registry.find(token)->factory(ctx));
  }
  return rungs;
}

}  // namespace apx

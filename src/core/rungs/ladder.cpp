#include "src/core/rungs/ladder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/core/rungs/dnn.hpp"
#include "src/core/rungs/edge.hpp"
#include "src/core/rungs/exact_cache.hpp"
#include "src/core/rungs/imu_gate.hpp"
#include "src/core/rungs/local_cache.hpp"
#include "src/core/rungs/p2p.hpp"
#include "src/core/rungs/regions.hpp"
#include "src/core/rungs/temporal.hpp"
#include "src/core/rungs/warm_tier.hpp"

namespace apx {

namespace {

using ArgKind = RungRegistry::ArgSpec::Kind;

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view text, const std::string& why) {
  throw std::invalid_argument("ladder spec '" + std::string(text) +
                              "': " + why);
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Positive integer; empty return means malformed.
bool parse_uint(std::string_view s, std::uint64_t& out) {
  if (!all_digits(s) || s.size() > 18) return false;
  out = 0;
  for (const char c : s) out = out * 10 + static_cast<std::uint64_t>(c - '0');
  return out > 0;
}

/// Float in [0, 1]; false means malformed.
bool parse_fraction(std::string_view s, float& out) {
  if (s.empty()) return false;
  const std::string buf{s};
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  out = static_cast<float>(v);
  return true;
}

/// Float strictly greater than 1 (capped at 64); false means malformed.
bool parse_ratio(std::string_view s, float& out) {
  if (s.empty()) return false;
  const std::string buf{s};
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!(v > 1.0 && v <= 64.0)) return false;
  out = static_cast<float>(v);
  return true;
}

bool parse_duration(std::string_view s, SimDuration& out) {
  std::string_view digits = s;
  SimDuration unit = kMicrosecond;
  if (digits.size() >= 2 && digits.substr(digits.size() - 2) == "ms") {
    unit = kMillisecond;
    digits.remove_suffix(2);
  } else if (digits.size() >= 2 && digits.substr(digits.size() - 2) == "us") {
    digits.remove_suffix(2);
  } else if (!digits.empty() && digits.back() == 's') {
    unit = kSecond;
    digits.remove_suffix(1);
  }
  std::uint64_t n = 0;
  if (!parse_uint(digits, n)) return false;
  out = static_cast<SimDuration>(n) * unit;
  return true;
}

/// Validates one "key" / "key=value" piece of a token's argument list
/// against the rung's registered argument set.
void check_arg(std::string_view text, std::string_view rung,
               const std::vector<RungRegistry::ArgSpec>& allowed,
               std::string_view key, bool has_value,
               std::string_view value) {
  const auto it =
      std::find_if(allowed.begin(), allowed.end(),
                   [key](const RungRegistry::ArgSpec& a) {
                     return a.key == key;
                   });
  if (it == allowed.end()) {
    bad_spec(text, "rung '" + std::string(rung) +
                       "' does not accept argument '" + std::string(key) +
                       "'");
  }
  const std::string where =
      "argument '" + std::string(key) + "' of rung '" + std::string(rung) +
      "'";
  switch (it->kind) {
    case ArgKind::kFlag:
      if (has_value) bad_spec(text, where + " takes no value");
      break;
    case ArgKind::kUint: {
      std::uint64_t n = 0;
      if (!has_value || !parse_uint(value, n)) {
        bad_spec(text, where + " needs a positive integer value");
      }
      break;
    }
    case ArgKind::kDuration: {
      SimDuration d = 0;
      if (!has_value || !parse_duration(value, d)) {
        bad_spec(text, where +
                           " needs a positive duration value "
                           "(e.g. 30s, 500ms, 250us)");
      }
      break;
    }
    case ArgKind::kFraction: {
      float f = 0.0f;
      if (!has_value || !parse_fraction(value, f)) {
        bad_spec(text, where + " needs a value in [0, 1]");
      }
      break;
    }
    case ArgKind::kRatio: {
      float f = 0.0f;
      if (!has_value || !parse_ratio(value, f)) {
        bad_spec(text, where + " needs a ratio value in (1, 64]");
      }
      break;
    }
  }
}

}  // namespace

SimDuration parse_spec_duration(std::string_view value) {
  SimDuration d = 0;
  if (!parse_duration(value, d)) {
    throw std::invalid_argument("malformed duration '" + std::string(value) +
                                "' (expected e.g. 30s, 500ms, 250us)");
  }
  return d;
}

std::string format_spec_duration(SimDuration d) {
  if (d > 0 && d % kSecond == 0) return std::to_string(d / kSecond) + "s";
  if (d > 0 && d % kMillisecond == 0) {
    return std::to_string(d / kMillisecond) + "ms";
  }
  return std::to_string(d) + "us";
}

LadderSpec LadderSpec::parse(std::string_view text) {
  const RungRegistry& registry = RungRegistry::instance();
  LadderSpec spec;
  int last_rank = -1;
  std::size_t pos = 0;
  while (true) {
    // Token-level commas split only outside parentheses, so argument lists
    // like "edge(shards=4,ttl=30s)" stay one token.
    std::size_t comma = text.size();
    int depth = 0;
    for (std::size_t i = pos; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(') ++depth;
      if (c == ')' && depth > 0) --depth;
      if (c == ',' && depth == 0) {
        comma = i;
        break;
      }
    }
    const std::string_view token = trim(text.substr(pos, comma - pos));
    if (token.empty()) bad_spec(text, "empty rung token");
    // Split "name(arglist)" — a bare name has no parentheses at all.
    std::string_view name = token;
    std::string_view arglist;
    const std::size_t paren = token.find('(');
    if (paren != std::string_view::npos) {
      if (token.back() != ')' || paren == 0 || paren + 2 > token.size() - 1) {
        bad_spec(text, "malformed token '" + std::string(token) +
                           "' (expected name or name(args))");
      }
      name = trim(token.substr(0, paren));
      arglist = trim(token.substr(paren + 1, token.size() - paren - 2));
      if (arglist.empty()) {
        bad_spec(text, "empty argument in '" + std::string(token) + "'");
      }
    }
    const RungRegistry::Entry* entry = registry.find(name);
    if (entry == nullptr) {
      bad_spec(text, "unknown rung '" + std::string(name) + "'");
    }
    // Validate each "key" / "key=value" piece and rebuild the canonical
    // (trimmed, comma-joined) argument string stored in the spec.
    std::string canonical;
    std::vector<std::string_view> seen_keys;
    std::size_t apos = 0;
    while (!arglist.empty()) {
      std::size_t acomma = arglist.find(',', apos);
      if (acomma == std::string_view::npos) acomma = arglist.size();
      const std::string_view piece = trim(arglist.substr(apos, acomma - apos));
      if (piece.empty()) {
        bad_spec(text, "empty argument in '" + std::string(token) + "'");
      }
      const std::size_t eq = piece.find('=');
      const bool has_value = eq != std::string_view::npos;
      const std::string_view key = trim(piece.substr(0, eq));
      const std::string_view value =
          has_value ? trim(piece.substr(eq + 1)) : std::string_view{};
      if (key.empty()) {
        bad_spec(text, "malformed argument '" + std::string(piece) +
                           "' in '" + std::string(token) + "'");
      }
      check_arg(text, name, entry->allowed_args, key, has_value, value);
      if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
          seen_keys.end()) {
        bad_spec(text, "duplicate argument '" + std::string(key) +
                           "' in '" + std::string(token) + "'");
      }
      seen_keys.push_back(key);
      if (!canonical.empty()) canonical += ',';
      canonical += key;
      if (has_value) {
        canonical += '=';
        canonical += value;
      }
      if (acomma == arglist.size()) break;
      apos = acomma + 1;
    }
    if (spec.has(name)) {
      bad_spec(text, "duplicate rung '" + std::string(name) + "'");
    }
    if (entry->rank <= last_rank) {
      // Covers both cheapest-first order violations and mutually exclusive
      // same-rank rungs (local + exact: one cache-lookup slot).
      bad_spec(text, "rung '" + std::string(name) +
                         "' out of ladder order (cheapest first, at most "
                         "one cache rung)");
    }
    last_rank = entry->rank;
    spec.tokens.emplace_back(name);
    spec.args.push_back(std::move(canonical));
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  if (spec.tokens.back() != "dnn") {
    bad_spec(text, "must end with 'dnn' (the unconditional answerer)");
  }
  if (spec.has("p2p") && !spec.has("local")) {
    bad_spec(text,
             "'p2p' requires 'local' (the P2P rung re-votes the local "
             "approximate cache)");
  }
  // The QALSH guarantee knobs configure the query-aware backend, so they
  // are meaningless without the 'qalsh' flag that selects it.
  if (!spec.has_arg("local", "qalsh")) {
    for (const std::string_view key : {"c", "delta", "beta"}) {
      if (spec.has_arg("local", key)) {
        bad_spec(text, "argument '" + std::string(key) +
                           "' of rung 'local' requires the 'qalsh' flag");
      }
    }
  } else {
    // Tighter-than-kFraction ranges the backend's constructor enforces:
    // reject here so a bad spec fails at parse, not at provisioning.
    float f = 0.0f;
    if (spec.has_arg("local", "delta") &&
        (!parse_fraction(spec.arg_value("local", "delta"), f) || f <= 0.0f ||
         f >= 1.0f)) {
      bad_spec(text, "argument 'delta' of rung 'local' needs a value in "
                     "(0, 1)");
    }
    if (spec.has_arg("local", "beta") &&
        (!parse_fraction(spec.arg_value("local", "beta"), f) || f <= 0.0f)) {
      bad_spec(text, "argument 'beta' of rung 'local' needs a value in "
                     "(0, 1]");
    }
  }
  return spec;
}

namespace {

/// Formats a fraction the way parse() accepts it back ("%g": no trailing
/// zeros, so 0.25f round-trips as "0.25").
std::string format_fraction(float f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(f));
  return buf;
}

/// Canonical argument list of an edge token: only the fields that differ
/// from the EdgeParams defaults, in registration order.
std::string edge_args(const EdgeParams& p) {
  const EdgeParams def;
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (p.shards != def.shards) add("shards", std::to_string(p.shards));
  if (p.capacity != def.capacity) add("capacity", std::to_string(p.capacity));
  if (p.ttl != def.ttl) add("ttl", format_spec_duration(p.ttl));
  if (p.error_budget != def.error_budget) {
    add("error_budget", format_fraction(p.error_budget));
  }
  return out;
}

/// Canonical argument list of a local token: the flag set (q8, qalsh) plus
/// the QALSH guarantee knobs that differ from the QalshParams defaults, in
/// registration order.
std::string local_args(const PipelineConfig& config) {
  std::string out;
  const auto add = [&out](const std::string& piece) {
    if (!out.empty()) out += ',';
    out += piece;
  };
  if (config.enable_quantized_scan) add("q8");
  if (config.cache.index == IndexKind::kQalsh) {
    add("qalsh");
    const QalshParams def;
    const QalshParams& p = config.cache.qalsh;
    if (p.c != def.c) add("c=" + format_fraction(p.c));
    if (p.delta != def.delta) add("delta=" + format_fraction(p.delta));
    if (p.beta != def.beta) add("beta=" + format_fraction(p.beta));
  }
  return out;
}

/// Canonical argument list of a regions token: only the fields that differ
/// from the RegionReuseParams defaults, in registration order.
std::string regions_args(const RegionReuseParams& p) {
  const RegionReuseParams def;
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (p.grid != def.grid) add("grid", std::to_string(p.grid));
  if (p.max_changed != def.max_changed) {
    add("max_changed", format_fraction(p.max_changed));
  }
  if (p.ttl != def.ttl) add("ttl", format_spec_duration(p.ttl));
  return out;
}

}  // namespace

LadderSpec LadderSpec::from_config(const PipelineConfig& config) {
  LadderSpec spec;
  const auto push = [&spec](const char* name, std::string arg = "") {
    spec.tokens.emplace_back(name);
    spec.args.push_back(std::move(arg));
  };
  if (config.enable_imu_gate || config.enable_imu_fastpath) push("imu");
  if (config.enable_temporal) push("temporal");
  if (config.enable_regions) push("regions", regions_args(config.regions));
  if (config.enable_warm_tier) push("warm");
  if (config.enable_local_cache) {
    push("local", local_args(config));
    if (config.enable_p2p) push("p2p");
  } else if (config.enable_exact_cache) {
    push("exact");
  }
  if (config.enable_edge) push("edge", edge_args(config.edge));
  push("dnn");
  return spec;
}

std::string LadderSpec::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!out.empty()) out += ',';
    out += tokens[i];
    if (i < args.size() && !args[i].empty()) {
      out += '(';
      out += args[i];
      out += ')';
    }
  }
  return out;
}

bool LadderSpec::has(std::string_view token) const noexcept {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

std::string_view LadderSpec::arg(std::string_view token) const noexcept {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // No ternary with a "" literal here: it would convert both operands to
    // a temporary std::string and the returned view would dangle.
    if (tokens[i] == token) {
      if (i < args.size()) return args[i];
      return {};
    }
  }
  return {};
}

std::string_view LadderSpec::arg_value(std::string_view token,
                                       std::string_view key) const noexcept {
  const std::string_view list = arg(token);
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view piece = list.substr(pos, comma - pos);
    const std::size_t eq = piece.find('=');
    if (eq != std::string_view::npos && piece.substr(0, eq) == key) {
      return piece.substr(eq + 1);
    }
    pos = comma + 1;
  }
  return {};
}

bool LadderSpec::has_arg(std::string_view token,
                         std::string_view key) const noexcept {
  const std::string_view list = arg(token);
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view piece = list.substr(pos, comma - pos);
    const std::size_t eq = piece.find('=');
    const std::string_view piece_key =
        eq == std::string_view::npos ? piece : piece.substr(0, eq);
    if (piece_key == key) return true;
    pos = comma + 1;
  }
  return false;
}

void apply_ladder(PipelineConfig& config, const LadderSpec& spec) {
  const bool imu = spec.has("imu");
  config.enable_imu_gate = imu;
  config.enable_imu_fastpath = imu;
  config.enable_temporal = spec.has("temporal");
  // The spec is authoritative on the region rung's grammar-visible knobs:
  // omitted keys reset to the RegionReuseParams defaults (provisioning
  // fields the grammar cannot express are left alone).
  config.enable_regions = spec.has("regions");
  if (config.enable_regions) {
    const RegionReuseParams def;
    config.regions.grid = def.grid;
    config.regions.max_changed = def.max_changed;
    config.regions.ttl = def.ttl;
    std::uint64_t n = 0;
    if (parse_uint(spec.arg_value("regions", "grid"), n)) {
      config.regions.grid = static_cast<int>(n);
    }
    float f = 0.0f;
    if (parse_fraction(spec.arg_value("regions", "max_changed"), f)) {
      config.regions.max_changed = f;
    }
    SimDuration d = 0;
    if (parse_duration(spec.arg_value("regions", "ttl"), d)) {
      config.regions.ttl = d;
    }
  }
  config.enable_warm_tier = spec.has("warm");
  config.enable_p2p = spec.has("p2p");
  config.enable_local_cache = spec.has("local");
  config.enable_exact_cache = spec.has("exact");
  // "local(q8)" switches the cache index to the SQ8 candidate scan; both
  // the pipeline flag and the cache's index config are overwritten so
  // provisioning code (which builds the cache from config.cache) and
  // flag-reading callers can never observe a divergent pair.
  config.enable_quantized_scan = spec.has_arg("local", "q8");
  config.cache.alsh.lsh.quantize.enabled = config.enable_quantized_scan;
  // "local(qalsh, ...)" swaps the cache index for the query-aware backend.
  // The spec is authoritative on its grammar-visible guarantee knobs:
  // omitted keys reset to the QalshParams defaults (seed / r0 / other
  // provisioning fields the grammar cannot express are left alone).
  if (spec.has_arg("local", "qalsh")) {
    const QalshParams def;
    config.cache.index = IndexKind::kQalsh;
    config.cache.qalsh.c = def.c;
    config.cache.qalsh.delta = def.delta;
    config.cache.qalsh.beta = def.beta;
    float f = 0.0f;
    if (parse_ratio(spec.arg_value("local", "c"), f)) {
      config.cache.qalsh.c = f;
    }
    if (parse_fraction(spec.arg_value("local", "delta"), f)) {
      config.cache.qalsh.delta = f;
    }
    if (parse_fraction(spec.arg_value("local", "beta"), f)) {
      config.cache.qalsh.beta = f;
    }
  } else if (config.cache.index == IndexKind::kQalsh) {
    // A ladder without the flag reverts the grammar-selected backend; index
    // kinds the grammar cannot express (kExact set directly by callers)
    // are never clobbered.
    config.cache.index = IndexKind::kAdaptiveLsh;
  }
  config.cache.qalsh.quantize.enabled =
      config.enable_quantized_scan &&
      config.cache.index == IndexKind::kQalsh;
  // The spec is authoritative on the edge tier's grammar-visible knobs:
  // omitted keys reset to the EdgeParams defaults (client-side fields the
  // grammar cannot express are left alone). parse() already validated the
  // value formats.
  config.enable_edge = spec.has("edge");
  if (config.enable_edge) {
    const EdgeParams def;
    config.edge.shards = def.shards;
    config.edge.capacity = def.capacity;
    config.edge.ttl = def.ttl;
    config.edge.error_budget = def.error_budget;
    std::uint64_t n = 0;
    if (parse_uint(spec.arg_value("edge", "shards"), n)) {
      config.edge.shards = static_cast<std::size_t>(n);
    }
    if (parse_uint(spec.arg_value("edge", "capacity"), n)) {
      config.edge.capacity = static_cast<std::size_t>(n);
    }
    SimDuration d = 0;
    if (parse_duration(spec.arg_value("edge", "ttl"), d)) {
      config.edge.ttl = d;
    }
    float f = 0.0f;
    if (parse_fraction(spec.arg_value("edge", "error_budget"), f)) {
      config.edge.error_budget = f;
    }
  }
  config.ladder = spec.to_string();
}

RungRegistry::RungRegistry() {
  add("imu", 0, &make_imu_gate_rung);
  add("temporal", 1, &make_temporal_rung);
  add("regions", 2, &make_regions_rung,
      {{"grid", ArgKind::kUint},
       {"max_changed", ArgKind::kFraction},
       {"ttl", ArgKind::kDuration}});
  add("warm", 3, &make_warm_tier_rung);
  add("local", 4, &make_local_cache_rung,
      {{"q8", ArgKind::kFlag},
       {"qalsh", ArgKind::kFlag},
       {"c", ArgKind::kRatio},
       {"delta", ArgKind::kFraction},
       {"beta", ArgKind::kFraction}});
  add("exact", 4, &make_exact_cache_rung);
  add("p2p", 5, &make_p2p_rung);
  add("edge", 6, &make_edge_rung,
      {{"shards", ArgKind::kUint},
       {"capacity", ArgKind::kUint},
       {"ttl", ArgKind::kDuration},
       {"error_budget", ArgKind::kFraction}});
  add("dnn", 7, &make_dnn_rung);
}

RungRegistry& RungRegistry::instance() {
  static RungRegistry registry;
  return registry;
}

void RungRegistry::add(std::string name, int rank, Factory factory,
                       std::vector<ArgSpec> allowed_args) {
  if (find(name) != nullptr) {
    throw std::logic_error("RungRegistry: duplicate rung '" + name + "'");
  }
  entries_.push_back(
      Entry{std::move(name), rank, factory, std::move(allowed_args)});
}

const RungRegistry::Entry* RungRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> RungRegistry::names() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->rank < b->rank;
                   });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (const Entry* entry : sorted) out.push_back(entry->name);
  return out;
}

std::vector<std::unique_ptr<ReuseRung>> build_ladder(
    const LadderSpec& spec, const RungBuildContext& ctx) {
  const RungRegistry& registry = RungRegistry::instance();
  std::vector<std::unique_ptr<ReuseRung>> rungs;
  rungs.reserve(spec.tokens.size() + 1);
  rungs.push_back(registry.find("imu")->factory(ctx));
  for (const std::string& token : spec.tokens) {
    if (token == "imu") continue;  // the entry rung above covers it
    rungs.push_back(registry.find(token)->factory(ctx));
  }
  return rungs;
}

}  // namespace apx

#include "src/core/rungs/ladder.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/rungs/dnn.hpp"
#include "src/core/rungs/exact_cache.hpp"
#include "src/core/rungs/imu_gate.hpp"
#include "src/core/rungs/local_cache.hpp"
#include "src/core/rungs/p2p.hpp"
#include "src/core/rungs/temporal.hpp"
#include "src/core/rungs/warm_tier.hpp"

namespace apx {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view text, const std::string& why) {
  throw std::invalid_argument("ladder spec '" + std::string(text) +
                              "': " + why);
}

}  // namespace

LadderSpec LadderSpec::parse(std::string_view text) {
  const RungRegistry& registry = RungRegistry::instance();
  LadderSpec spec;
  int last_rank = -1;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view token = trim(text.substr(pos, comma - pos));
    if (token.empty()) bad_spec(text, "empty rung token");
    // Split "name(arg)" — a bare name has no parentheses at all.
    std::string_view name = token;
    std::string_view arg;
    const std::size_t paren = token.find('(');
    if (paren != std::string_view::npos) {
      if (token.back() != ')' || paren == 0 || paren + 2 > token.size() - 1) {
        bad_spec(text, "malformed token '" + std::string(token) +
                           "' (expected name or name(arg))");
      }
      name = trim(token.substr(0, paren));
      arg = trim(token.substr(paren + 1, token.size() - paren - 2));
      if (arg.empty()) {
        bad_spec(text, "empty argument in '" + std::string(token) + "'");
      }
    }
    const RungRegistry::Entry* entry = registry.find(name);
    if (entry == nullptr) {
      bad_spec(text, "unknown rung '" + std::string(name) + "'");
    }
    if (!arg.empty() &&
        std::find(entry->allowed_args.begin(), entry->allowed_args.end(),
                  arg) == entry->allowed_args.end()) {
      bad_spec(text, "rung '" + std::string(name) +
                         "' does not accept argument '" + std::string(arg) +
                         "'");
    }
    if (spec.has(name)) {
      bad_spec(text, "duplicate rung '" + std::string(name) + "'");
    }
    if (entry->rank <= last_rank) {
      // Covers both cheapest-first order violations and mutually exclusive
      // same-rank rungs (local + exact: one cache-lookup slot).
      bad_spec(text, "rung '" + std::string(name) +
                         "' out of ladder order (cheapest first, at most "
                         "one cache rung)");
    }
    last_rank = entry->rank;
    spec.tokens.emplace_back(name);
    spec.args.emplace_back(arg);
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  if (spec.tokens.back() != "dnn") {
    bad_spec(text, "must end with 'dnn' (the unconditional answerer)");
  }
  if (spec.has("p2p") && !spec.has("local")) {
    bad_spec(text,
             "'p2p' requires 'local' (the P2P rung re-votes the local "
             "approximate cache)");
  }
  return spec;
}

LadderSpec LadderSpec::from_config(const PipelineConfig& config) {
  LadderSpec spec;
  const auto push = [&spec](const char* name, const char* arg = "") {
    spec.tokens.emplace_back(name);
    spec.args.emplace_back(arg);
  };
  if (config.enable_imu_gate || config.enable_imu_fastpath) push("imu");
  if (config.enable_temporal) push("temporal");
  if (config.enable_warm_tier) push("warm");
  if (config.cache_mode == CacheMode::kApprox) {
    push("local", config.enable_quantized_scan ? "q8" : "");
    if (config.enable_p2p) push("p2p");
  } else if (config.cache_mode == CacheMode::kExact) {
    push("exact");
  }
  push("dnn");
  return spec;
}

std::string LadderSpec::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!out.empty()) out += ',';
    out += tokens[i];
    if (i < args.size() && !args[i].empty()) {
      out += '(';
      out += args[i];
      out += ')';
    }
  }
  return out;
}

bool LadderSpec::has(std::string_view token) const noexcept {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

std::string_view LadderSpec::arg(std::string_view token) const noexcept {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == token) return i < args.size() ? args[i] : "";
  }
  return {};
}

void apply_ladder(PipelineConfig& config, const LadderSpec& spec) {
  const bool imu = spec.has("imu");
  config.enable_imu_gate = imu;
  config.enable_imu_fastpath = imu;
  config.enable_temporal = spec.has("temporal");
  config.enable_warm_tier = spec.has("warm");
  config.enable_p2p = spec.has("p2p");
  config.cache_mode = spec.has("local")   ? CacheMode::kApprox
                      : spec.has("exact") ? CacheMode::kExact
                                          : CacheMode::kNone;
  // "local(q8)" switches the cache index to the SQ8 candidate scan; both
  // the pipeline flag and the cache's index config are overwritten so
  // provisioning code (which builds the cache from config.cache) and
  // flag-reading callers can never observe a divergent pair.
  config.enable_quantized_scan = (spec.arg("local") == "q8");
  config.cache.alsh.lsh.quantize.enabled = config.enable_quantized_scan;
  config.ladder = spec.to_string();
}

RungRegistry::RungRegistry() {
  add("imu", 0, &make_imu_gate_rung);
  add("temporal", 1, &make_temporal_rung);
  add("warm", 2, &make_warm_tier_rung);
  add("local", 3, &make_local_cache_rung, {"q8"});
  add("exact", 3, &make_exact_cache_rung);
  add("p2p", 4, &make_p2p_rung);
  add("dnn", 5, &make_dnn_rung);
}

RungRegistry& RungRegistry::instance() {
  static RungRegistry registry;
  return registry;
}

void RungRegistry::add(std::string name, int rank, Factory factory,
                       std::vector<std::string> allowed_args) {
  if (find(name) != nullptr) {
    throw std::logic_error("RungRegistry: duplicate rung '" + name + "'");
  }
  entries_.push_back(
      Entry{std::move(name), rank, factory, std::move(allowed_args)});
}

const RungRegistry::Entry* RungRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> RungRegistry::names() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->rank < b->rank;
                   });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (const Entry* entry : sorted) out.push_back(entry->name);
  return out;
}

std::vector<std::unique_ptr<ReuseRung>> build_ladder(
    const LadderSpec& spec, const RungBuildContext& ctx) {
  const RungRegistry& registry = RungRegistry::instance();
  std::vector<std::unique_ptr<ReuseRung>> rungs;
  rungs.reserve(spec.tokens.size() + 1);
  rungs.push_back(registry.find("imu")->factory(ctx));
  for (const std::string& token : spec.tokens) {
    if (token == "imu") continue;  // the entry rung above covers it
    rungs.push_back(registry.find(token)->factory(ctx));
  }
  return rungs;
}

}  // namespace apx

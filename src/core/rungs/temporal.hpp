#pragma once
// Temporal keyframe-reuse rung: a cheap frame-diff against the last
// pixel-inspecting result's keyframe. Owns the TemporalReuseDetector —
// keyframe refresh happens in on_result (any source that actually looked
// at the image), and major motion invalidates the chain.

#include "src/core/rungs/rung.hpp"
#include "src/video/locality.hpp"

namespace apx {

class TemporalRung final : public ReuseRung {
 public:
  explicit TemporalRung(const RungBuildContext& ctx)
      : temporal_(ctx.config->temporal) {}

  std::string_view name() const noexcept override { return "temporal"; }
  Rung trace_rung() const noexcept override { return Rung::kTemporal; }
  void run(ReusePipeline& host) override;
  void on_result(ReusePipeline& host,
                 const RecognitionResult& result) override;

 private:
  TemporalReuseDetector temporal_;
};

std::unique_ptr<ReuseRung> make_temporal_rung(const RungBuildContext& ctx);

}  // namespace apx

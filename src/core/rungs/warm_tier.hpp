#pragma once
// Warm-tier rung: answers from 8-bit-quantized per-class prototypes
// (ann/quantize codes over dnn/centroid running means) with a linear scan —
// a tier between temporal reuse (no pixels beyond a diff) and the local
// approximate cache (feature extraction + A-LSH walk + H-kNN vote). The
// scan is O(#labels), not O(#cached entries), and matching against the
// stored *reconstructions* keeps the answer honest to what the 8-bit codes
// actually preserve.
//
// Learning is result-driven: on_result folds every DNN-validated frame
// into the label's running mean and re-quantizes that prototype. A
// prototype only answers once it has min_support observations and the
// query lands within the (gate-scaled) acceptance distance.

#include <map>

#include "src/ann/quantize.hpp"
#include "src/core/rungs/rung.hpp"
#include "src/dnn/centroid.hpp"

namespace apx {

class WarmTierRung final : public ReuseRung {
 public:
  explicit WarmTierRung(const RungBuildContext& ctx)
      : extractor_(ctx.extractor),
        bank_(ctx.config->warm.max_prototypes) {}

  std::string_view name() const noexcept override { return "warm"; }
  Rung trace_rung() const noexcept override { return Rung::kWarm; }
  const char* extra_source() const noexcept override { return "warm-cache"; }
  void run(ReusePipeline& host) override;
  void on_result(ReusePipeline& host,
                 const RecognitionResult& result) override;

  std::size_t prototype_count() const noexcept { return quantized_.size(); }

 private:
  /// A prototype as the rung actually matches it: the 8-bit codes plus the
  /// cached reconstruction (so the scan allocates nothing).
  struct QuantizedProto {
    QuantizedVec codes;
    FeatureVec recon;
    std::uint32_t support = 0;
  };

  const FeatureExtractor* extractor_;
  CentroidBank bank_;
  std::map<Label, QuantizedProto> quantized_;  ///< label order: deterministic
};

std::unique_ptr<ReuseRung> make_warm_tier_rung(const RungBuildContext& ctx);

}  // namespace apx

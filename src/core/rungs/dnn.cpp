#include "src/core/rungs/dnn.hpp"

#include "src/core/pipeline.hpp"
#include "src/dnn/model.hpp"

namespace apx {

void DnnRung::run(ReusePipeline& host) {
  host.trace().begin_span(Rung::kDnn, host.sim().now());
  const SimDuration latency = model_->sample_latency(host.rng());
  host.frame_ctx().dnn_energy = model_->energy_mj();
  host.schedule(latency, [this, &host] {
    FrameContext& ctx = host.frame_ctx();
    const Prediction pred =
        model_->infer(ctx.frame.image, ctx.frame.true_label, host.rng());
    if (host.config().enable_adaptive_threshold && cache_ != nullptr &&
        ctx.features_ready) {
      // Validation event: the DNN ran, so compare it against the cache's
      // hypothetical vote just past the current threshold edge.
      const auto vote = cache_->peek_vote(
          {.features = ctx.features,
           .threshold_scale = host.threshold().observation_scale()});
      if (vote.has_value()) {
        host.threshold().observe(vote->label == pred.label);
      }
    }
    if (cache_ != nullptr && ctx.features_ready) {
      cache_->insert(ctx.features, pred.label, pred.confidence,
                     host.sim().now());
    } else if (exact_ != nullptr && ctx.features_ready) {
      exact_->insert(ctx.features, pred.label);
    }
    // The DNN always answers: its span is a hit by construction.
    host.trace().end_span(RungOutcome::kHit, host.sim().now());
    host.finish(ResultSource::kFullInference, pred.label, pred.confidence);
  });
}

std::unique_ptr<ReuseRung> make_dnn_rung(const RungBuildContext& ctx) {
  return std::make_unique<DnnRung>(ctx);
}

}  // namespace apx

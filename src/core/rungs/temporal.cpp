#include "src/core/rungs/temporal.hpp"

#include "src/core/pipeline.hpp"

namespace apx {

void TemporalRung::run(ReusePipeline& host) {
  if (!host.config().enable_temporal) {
    host.advance();
    return;
  }
  const FrameContext& ctx = host.frame_ctx();
  if (!ctx.gate.allow_temporal_reuse) {
    // Major motion: the previous keyframe no longer describes the scene.
    temporal_.invalidate();
    host.advance();
    return;
  }
  const TemporalCheck check = temporal_.check(ctx.frame.image);
  host.trace().begin_span(Rung::kTemporal, host.sim().now());
  host.spend(check.latency);
  host.schedule(check.latency, [&host, check] {
    if (check.reusable && host.last_result().has_value() &&
        host.last_result()->label != kNoLabel) {
      host.trace().end_span(RungOutcome::kHit, host.sim().now());
      host.finish(ResultSource::kTemporalReuse, host.last_result()->label,
                  host.last_result()->confidence);
      return;
    }
    host.trace().end_span(RungOutcome::kMiss, host.sim().now());
    host.advance();
  });
}

void TemporalRung::on_result(ReusePipeline& host,
                             const RecognitionResult& result) {
  // A keyframe is any frame whose result came from actually looking at the
  // image; temporal reuse chains from it, and the IMU fast path never
  // refreshes it (it never inspects pixels).
  switch (result.source) {
    case ResultSource::kLocalCacheHit:
    case ResultSource::kPeerCacheHit:
    case ResultSource::kFullInference:
    case ResultSource::kWarmCacheHit:
      temporal_.set_keyframe(host.frame_ctx().frame.image);
      break;
    case ResultSource::kImuFastPath:
    case ResultSource::kTemporalReuse:
      break;
  }
}

std::unique_ptr<ReuseRung> make_temporal_rung(const RungBuildContext& ctx) {
  return std::make_unique<TemporalRung>(ctx);
}

}  // namespace apx

#include "src/core/rungs/edge.hpp"

#include "src/core/pipeline.hpp"
#include "src/features/extractor.hpp"

namespace apx {

void EdgeRung::run(ReusePipeline& host) {
  // The backoff gate keeps a device cut off from the edge from paying the
  // lookup timeout every frame: after repeated timed-out rounds the rung
  // is skipped entirely and the frame falls through to the DNN.
  if (!host.config().enable_edge || edge_ == nullptr ||
      !edge_->should_attempt(host.sim().now())) {
    host.advance();
    return;
  }
  host.trace().begin_span(Rung::kEdge, host.sim().now());
  // The edge key is the same CNN feature vector the local cache uses; a
  // ladder without "local" (edge-only deployments) pays the extraction
  // here instead.
  const SimDuration extract_cost =
      host.frame_ctx().features_ready ? 0 : extractor_->latency();
  host.spend(extract_cost);
  host.schedule(extract_cost, [this, &host] {
    FrameContext& ctx = host.frame_ctx();
    if (!ctx.features_ready) {
      ctx.features = extractor_->extract(ctx.frame.image);
      ctx.features_ready = true;
    }
    const std::uint64_t epoch = host.epoch();
    edge_->async_lookup(
        ctx.features, ctx.gate.threshold_scale,
        [&host, epoch](std::optional<HknnVote> vote) {
          if (!host.live(epoch)) return;
          if (vote.has_value()) {
            host.trace().end_span(RungOutcome::kHit, host.sim().now());
            host.finish(ResultSource::kEdgeCacheHit, vote->label,
                        vote->homogeneity);
          } else {
            host.trace().end_span(RungOutcome::kMiss, host.sim().now());
            host.advance();
          }
        });
  });
}

void EdgeRung::on_result(ReusePipeline& host,
                         const RecognitionResult& result) {
  // Every DNN-validated frame is offered to the edge; admission against the
  // error budget is the service's call. finish() stored the prediction in
  // last_result() before the hooks run, so its confidence is available.
  if (result.source != ResultSource::kFullInference || edge_ == nullptr) {
    return;
  }
  const FrameContext& ctx = host.frame_ctx();
  if (!ctx.features_ready) return;
  const float confidence =
      host.last_result().has_value() ? host.last_result()->confidence : 0.0f;
  edge_->feed(ctx.features, result.label, confidence);
}

std::unique_ptr<ReuseRung> make_edge_rung(const RungBuildContext& ctx) {
  return std::make_unique<EdgeRung>(ctx);
}

}  // namespace apx

#pragma once
// P2P rung: broadcast a lookup to nearby peers, merge their answers into
// the local approximate cache, and re-run the homogenized vote over the
// enriched neighbourhood. Skipped (no span, no cost) while the peer
// service's degradation backoff suppresses lookups.

#include "src/cache/approx_cache.hpp"
#include "src/core/rungs/rung.hpp"
#include "src/p2p/peer_cache.hpp"

namespace apx {

class P2pRung final : public ReuseRung {
 public:
  explicit P2pRung(const RungBuildContext& ctx)
      : cache_(ctx.cache), peers_(ctx.peers) {}

  std::string_view name() const noexcept override { return "p2p"; }
  Rung trace_rung() const noexcept override { return Rung::kP2p; }
  void run(ReusePipeline& host) override;

 private:
  ApproxCache* cache_;
  PeerCacheService* peers_;
};

std::unique_ptr<ReuseRung> make_p2p_rung(const RungBuildContext& ctx);

}  // namespace apx

#pragma once
// Exact-match memoization rung (the conventional baseline the poster
// argues against). Reports under the local-cache trace rung: to the
// per-rung breakdown both are "the cache lookup" — one lookup path, two
// rung types.

#include "src/cache/exact_cache.hpp"
#include "src/core/rungs/rung.hpp"

namespace apx {

class ExactCacheRung final : public ReuseRung {
 public:
  explicit ExactCacheRung(const RungBuildContext& ctx)
      : extractor_(ctx.extractor), exact_(ctx.exact_cache) {}

  std::string_view name() const noexcept override { return "exact"; }
  Rung trace_rung() const noexcept override { return Rung::kLocalCache; }
  void run(ReusePipeline& host) override;

 private:
  const FeatureExtractor* extractor_;
  ExactCache* exact_;
};

std::unique_ptr<ReuseRung> make_exact_cache_rung(const RungBuildContext& ctx);

}  // namespace apx

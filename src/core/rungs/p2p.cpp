#include "src/core/rungs/p2p.hpp"

#include "src/core/pipeline.hpp"

namespace apx {

void P2pRung::run(ReusePipeline& host) {
  // The backoff gate keeps a partitioned device from paying the P2P
  // timeout every frame: after repeated degraded rounds the rung is
  // skipped entirely and the frame falls straight through to the DNN.
  if (!host.config().enable_p2p || peers_ == nullptr ||
      !peers_->should_attempt(host.sim().now())) {
    host.advance();
    return;
  }
  host.trace().begin_span(Rung::kP2p, host.sim().now());
  const std::uint64_t epoch = host.epoch();
  peers_->async_lookup(
      host.frame_ctx().features,
      [this, &host, epoch](std::vector<WireEntry> entries) {
        if (!host.live(epoch)) return;
        if (entries.empty()) {
          host.trace().end_span(RungOutcome::kMiss, host.sim().now());
          host.advance();
          return;
        }
        // Responses were merged into the local cache by the peer service;
        // re-run the homogenized vote over the enriched neighbourhood.
        const FrameContext& ctx = host.frame_ctx();
        const CacheResult res = cache_->lookup(
            {.features = ctx.features,
             .now = host.sim().now(),
             .threshold_scale = ctx.gate.threshold_scale,
             .trace = &host.trace()});
        host.spend(res.latency);
        host.schedule(res.latency, [&host, vote = res.vote] {
          if (vote.has_value()) {
            host.trace().end_span(RungOutcome::kHit, host.sim().now());
            host.finish(ResultSource::kPeerCacheHit, vote->label,
                        vote->homogeneity);
          } else {
            host.trace().end_span(RungOutcome::kMiss, host.sim().now());
            host.advance();
          }
        });
      });
}

std::unique_ptr<ReuseRung> make_p2p_rung(const RungBuildContext& ctx) {
  return std::make_unique<P2pRung>(ctx);
}

}  // namespace apx

#pragma once
// Edge rung: query the region's EdgeCacheService after a local/P2P miss,
// and feed it DNN-validated results so recognition history aggregates
// across every device in range. Skipped (no span, no cost) while the edge
// client's degradation backoff suppresses lookups — a device partitioned
// from the edge converges back to P2P/local latency.

#include "src/core/rungs/rung.hpp"
#include "src/edge/edge_client.hpp"

namespace apx {

class EdgeRung final : public ReuseRung {
 public:
  explicit EdgeRung(const RungBuildContext& ctx)
      : extractor_(ctx.extractor), edge_(ctx.edge) {}

  std::string_view name() const noexcept override { return "edge"; }
  Rung trace_rung() const noexcept override { return Rung::kEdge; }
  void run(ReusePipeline& host) override;
  void on_result(ReusePipeline& host,
                 const RecognitionResult& result) override;
  const char* extra_source() const noexcept override { return "edge-cache"; }

 private:
  const FeatureExtractor* extractor_;
  EdgeClient* edge_;
};

std::unique_ptr<ReuseRung> make_edge_rung(const RungBuildContext& ctx);

}  // namespace apx

#pragma once
// Local approximate-cache rung: feature extraction (skipped when an
// upstream rung already extracted) followed by the A-LSH + H-kNN lookup,
// with the gate's threshold scale applied per call.

#include "src/cache/approx_cache.hpp"
#include "src/core/rungs/rung.hpp"

namespace apx {

class LocalCacheRung final : public ReuseRung {
 public:
  explicit LocalCacheRung(const RungBuildContext& ctx)
      : extractor_(ctx.extractor), cache_(ctx.cache) {}

  std::string_view name() const noexcept override { return "local"; }
  Rung trace_rung() const noexcept override { return Rung::kLocalCache; }
  void run(ReusePipeline& host) override;

 private:
  const FeatureExtractor* extractor_;
  ApproxCache* cache_;
};

std::unique_ptr<ReuseRung> make_local_cache_rung(const RungBuildContext& ctx);

}  // namespace apx

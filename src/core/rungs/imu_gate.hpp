#pragma once
// Entry rung: consults the motion estimate, derives the frame's gate
// decision (temporal-reuse permission + threshold scale, composed with the
// adaptive-threshold trim) and takes the stationary fast path when the
// last result is still fresh. Present in EVERY ladder — when both IMU
// features are disabled it runs inert (zero cost, no span) but still
// performs the admission hop and publishes a neutral gate decision.

#include "src/core/rungs/rung.hpp"
#include "src/imu/gate.hpp"

namespace apx {

class ImuGateRung final : public ReuseRung {
 public:
  explicit ImuGateRung(const RungBuildContext& ctx)
      : gate_(ctx.config->gate) {}

  std::string_view name() const noexcept override { return "imu"; }
  Rung trace_rung() const noexcept override { return Rung::kImuGate; }
  void run(ReusePipeline& host) override;

 private:
  MotionGate gate_;
};

std::unique_ptr<ReuseRung> make_imu_gate_rung(const RungBuildContext& ctx);

}  // namespace apx

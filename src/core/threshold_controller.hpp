#pragma once
// Adaptive similarity threshold (Potluck-style feedback tuning). A fixed
// H-kNN max_distance is a guess: too tight wastes reuse opportunities, too
// loose reuses wrong answers. This controller closes the loop with the
// only ground truth a deployed system ever sees — frames where the DNN ran
// anyway. On each such frame we ask: "would the cache's vote (at a relaxed
// observation threshold) have agreed with the DNN?" Agreement means the
// threshold can afford to loosen (additive increase); disagreement means
// reuse at that distance would have been wrong, so it tightens sharply
// (multiplicative decrease). AIMD keeps the wrong-reuse exposure bounded
// while recovering quickly when the scene distribution becomes friendly.

#include <algorithm>

namespace apx {

/// AIMD tuning knobs.
struct ThresholdControllerParams {
  float min_scale = 0.5f;     ///< lower clamp on the threshold multiplier
  float max_scale = 2.0f;     ///< upper clamp
  float increase_step = 0.02f;///< additive increase per agreement
  float decrease_factor = 0.85f;  ///< multiplicative decrease per conflict
  /// Hypothetical votes are evaluated at this multiple of the *current*
  /// effective threshold, so the controller can see just past its edge.
  float observe_scale = 1.6f;
};

/// Feedback controller for the cache similarity threshold.
class ThresholdController {
 public:
  explicit ThresholdController(
      const ThresholdControllerParams& params = {}) noexcept
      : params_(params) {}

  /// Multiplier to apply to HknnParams::max_distance for real lookups.
  float scale() const noexcept { return scale_; }

  /// Scale at which to evaluate the hypothetical (observation) vote.
  float observation_scale() const noexcept {
    return scale_ * params_.observe_scale;
  }

  /// Feeds one validation event: the DNN ran, and the cache's hypothetical
  /// vote at the observation threshold either agreed with it or not.
  /// Frames with no hypothetical vote carry no signal and are not fed.
  void observe(bool vote_agreed_with_dnn) noexcept {
    if (vote_agreed_with_dnn) {
      scale_ += params_.increase_step;
      ++agreements_;
    } else {
      scale_ *= params_.decrease_factor;
      ++conflicts_;
    }
    scale_ = std::clamp(scale_, params_.min_scale, params_.max_scale);
  }

  std::size_t agreements() const noexcept { return agreements_; }
  std::size_t conflicts() const noexcept { return conflicts_; }
  const ThresholdControllerParams& params() const noexcept { return params_; }

 private:
  ThresholdControllerParams params_;
  float scale_ = 1.0f;
  std::size_t agreements_ = 0;
  std::size_t conflicts_ = 0;
};

}  // namespace apx

#pragma once
// Accuracy-oracle model: returns the ground-truth label with probability
// `top1_accuracy`, otherwise a deliberately wrong label. Used by the large
// simulation sweeps where running even the mini-CNN per frame would dominate
// experiment wall time without changing any conclusion (the DNN's output
// distribution, not its arithmetic, is what the cache interacts with).

#include <memory>

#include "src/dnn/model.hpp"

namespace apx {

/// Creates an oracle with the given profile over `num_classes` labels.
/// Wrong answers are drawn uniformly from the other labels within
/// `confusion_group_size`-sized groups when that is > 1 (mimicking DNNs
/// confusing similar classes), otherwise uniformly over all other labels.
std::unique_ptr<RecognitionModel> make_oracle_model(
    const ModelProfile& profile, int num_classes,
    int confusion_group_size = 1);

}  // namespace apx

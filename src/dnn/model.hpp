#pragma once
// The "full DNN" the cache avoids running. In this reproduction the DNN is
// replaced by (a) a cost profile with published-magnitude mobile inference
// latency and energy, and (b) either an accuracy oracle (fast, used in large
// sweeps) or a real nearest-centroid classifier over CNN embeddings (used in
// examples and correctness tests). See DESIGN.md §4 for why the substitution
// preserves the paper's claims.

#include <string>

#include "src/image/image.hpp"
#include "src/util/clock.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// Class label. Negative values mean "no result".
using Label = int;
constexpr Label kNoLabel = -1;

/// One classifier output.
struct Prediction {
  Label label = kNoLabel;
  float confidence = 0.0f;
};

/// Latency/energy/accuracy envelope of a mobile recognition model.
struct ModelProfile {
  std::string name = "mobilenet_v2";
  SimDuration mean_latency = 60 * kMillisecond;  ///< per full inference
  SimDuration latency_jitter = 8 * kMillisecond; ///< stddev, truncated at 20%
  double energy_mj = 120.0;                      ///< per full inference
  double top1_accuracy = 0.96;                   ///< on the eval workload
};

/// Interface for the heavyweight recognizer at the bottom of the pipeline.
class RecognitionModel {
 public:
  virtual ~RecognitionModel() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Runs one inference. `true_label` is the frame's ground truth, which a
  /// simulated model may consult (the oracle does; the centroid classifier
  /// ignores it). `rng` drives latency jitter and oracle errors.
  virtual Prediction infer(const Image& img, Label true_label, Rng& rng) = 0;

  /// Samples the latency of one inference.
  virtual SimDuration sample_latency(Rng& rng) const = 0;

  /// Energy of one inference in millijoules.
  virtual double energy_mj() const noexcept = 0;

  /// The cost/accuracy envelope this model simulates.
  virtual const ModelProfile& profile() const noexcept = 0;
};

/// Samples `profile.mean_latency` with Gaussian jitter, truncated to
/// [0.8, 1.5] x mean so a pathological draw cannot distort an experiment.
SimDuration sample_profile_latency(const ModelProfile& profile, Rng& rng);

}  // namespace apx

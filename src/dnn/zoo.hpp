#pragma once
// Published-magnitude cost profiles for mobile recognition models. Values
// are in the range reported for mid-range smartphones circa 2020-2021
// (TFLite CPU, single image): the absolute numbers only need to keep the
// hit-path (few ms) vs miss-path (tens to hundreds of ms) ratio realistic.

#include <vector>

#include "src/dnn/model.hpp"

namespace apx {

/// MobileNetV2-class profile (the poster's "standard mobile" model).
ModelProfile mobilenet_v2_profile();

/// ResNet50-class profile (heavier; larger reuse payoff).
ModelProfile resnet50_profile();

/// InceptionV3-class profile (heaviest in the zoo).
ModelProfile inception_v3_profile();

/// All profiles, lightest first.
std::vector<ModelProfile> model_zoo();

}  // namespace apx

#pragma once
// A real (non-oracle) classifier: nearest class centroid in MiniCnn
// embedding space, trained on rendered samples. Slower than the oracle but
// exercises the genuine image -> feature -> decision path end to end; used
// by the examples and by correctness tests.

#include <memory>

#include "src/dnn/model.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/scene.hpp"

namespace apx {

/// Nearest-centroid classifier over CNN embeddings.
class CentroidClassifier final : public RecognitionModel {
 public:
  /// Trains by rendering `samples_per_class` views of every class from
  /// `scenes` and averaging their embeddings. `profile.top1_accuracy` is
  /// ignored — accuracy emerges from the classifier itself.
  CentroidClassifier(const SceneGenerator& scenes, int samples_per_class,
                     const ModelProfile& profile, std::uint64_t seed = 99);

  const std::string& name() const noexcept override { return profile_.name; }
  const ModelProfile& profile() const noexcept override { return profile_; }
  double energy_mj() const noexcept override { return profile_.energy_mj; }
  SimDuration sample_latency(Rng& rng) const override;

  /// Classifies by nearest centroid; ignores `true_label`.
  Prediction infer(const Image& img, Label true_label, Rng& rng) override;

  /// Embeds an image with the classifier's own CNN (shared with the cache
  /// key extractor in the examples).
  FeatureVec embed(const Image& img) const { return cnn_.embed(img); }

  int num_classes() const noexcept {
    return static_cast<int>(centroids_.size());
  }

 private:
  ModelProfile profile_;
  MiniCnn cnn_;
  std::vector<FeatureVec> centroids_;
};

}  // namespace apx

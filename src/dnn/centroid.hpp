#pragma once
// Centroid machinery over feature embeddings:
//   * CentroidClassifier — a real (non-oracle) classifier: nearest class
//     centroid in MiniCnn embedding space, trained on rendered samples.
//     Slower than the oracle but exercises the genuine image -> feature ->
//     decision path end to end; used by the examples and correctness tests.
//   * CentroidBank — online per-class running-mean prototypes learned from
//     DNN-validated frames. The warm-tier rung quantizes these prototypes
//     (ann/quantize) and answers near-matches without an A-LSH lookup.

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "src/dnn/model.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/scene.hpp"

namespace apx {

/// Nearest-centroid classifier over CNN embeddings.
class CentroidClassifier final : public RecognitionModel {
 public:
  /// Trains by rendering `samples_per_class` views of every class from
  /// `scenes` and averaging their embeddings. `profile.top1_accuracy` is
  /// ignored — accuracy emerges from the classifier itself.
  CentroidClassifier(const SceneGenerator& scenes, int samples_per_class,
                     const ModelProfile& profile, std::uint64_t seed = 99);

  const std::string& name() const noexcept override { return profile_.name; }
  const ModelProfile& profile() const noexcept override { return profile_; }
  double energy_mj() const noexcept override { return profile_.energy_mj; }
  SimDuration sample_latency(Rng& rng) const override;

  /// Classifies by nearest centroid; ignores `true_label`.
  Prediction infer(const Image& img, Label true_label, Rng& rng) override;

  /// Embeds an image with the classifier's own CNN (shared with the cache
  /// key extractor in the examples).
  FeatureVec embed(const Image& img) const { return cnn_.embed(img); }

  int num_classes() const noexcept {
    return static_cast<int>(centroids_.size());
  }

 private:
  ModelProfile profile_;
  MiniCnn cnn_;
  std::vector<FeatureVec> centroids_;
};

/// Online bank of per-class prototypes: one running-mean embedding per
/// label, learned one observation at a time. Capacity-bounded: admitting a
/// new label when full evicts the lowest-support prototype (ties break
/// toward the smallest label — the bank iterates in label order, so its
/// behaviour is deterministic).
class CentroidBank {
 public:
  struct Prototype {
    FeatureVec mean;
    std::uint32_t support = 0;  ///< observations folded into `mean`
  };

  /// What one observe() changed: the label whose prototype was created or
  /// updated, and the label evicted to make room (kNoLabel when none was).
  struct ObserveOutcome {
    Label updated = kNoLabel;
    Label evicted = kNoLabel;
  };

  explicit CentroidBank(std::size_t max_prototypes);

  /// Folds one observation into the label's running mean (creating the
  /// prototype, evicting if at capacity). No-op for kNoLabel.
  ObserveOutcome observe(std::span<const float> features, Label label);

  /// The label's prototype; nullptr when absent. Invalidated by observe().
  const Prototype* find(Label label) const noexcept;

  std::size_t size() const noexcept { return protos_.size(); }
  std::size_t capacity() const noexcept { return max_; }

  /// All prototypes, in label order.
  const std::map<Label, Prototype>& prototypes() const noexcept {
    return protos_;
  }

 private:
  std::size_t max_;
  std::map<Label, Prototype> protos_;
};

}  // namespace apx

#include "src/dnn/centroid.hpp"

#include <limits>

#include "src/util/vecmath.hpp"

namespace apx {

CentroidClassifier::CentroidClassifier(const SceneGenerator& scenes,
                                       int samples_per_class,
                                       const ModelProfile& profile,
                                       std::uint64_t seed)
    : profile_(profile), cnn_(64, seed) {
  Rng rng{seed ^ 0xc1a551f1e5ULL};
  centroids_.reserve(static_cast<std::size_t>(scenes.num_classes()));
  for (int c = 0; c < scenes.num_classes(); ++c) {
    FeatureVec centroid(cnn_.dim(), 0.0f);
    for (int s = 0; s < samples_per_class; ++s) {
      ViewParams view;
      view.dx = static_cast<float>(rng.normal(0.0, 0.3));
      view.dy = static_cast<float>(rng.normal(0.0, 0.3));
      view.zoom = static_cast<float>(rng.uniform(0.8, 1.2));
      view.noise_sigma = 0.02f;
      view.noise_seed = rng.next_u64();
      const FeatureVec emb = cnn_.embed(scenes.render(c, view));
      add_in_place(centroid, emb);
    }
    normalize(centroid);
    centroids_.push_back(std::move(centroid));
  }
}

SimDuration CentroidClassifier::sample_latency(Rng& rng) const {
  return sample_profile_latency(profile_, rng);
}

Prediction CentroidClassifier::infer(const Image& img, Label /*true_label*/,
                                     Rng& /*rng*/) {
  const FeatureVec emb = cnn_.embed(img);
  Label best = kNoLabel;
  float best_dist = std::numeric_limits<float>::max();
  float second_dist = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const float d = l2_sq(emb, centroids_[c]);
    if (d < best_dist) {
      second_dist = best_dist;
      best_dist = d;
      best = static_cast<Label>(c);
    } else if (d < second_dist) {
      second_dist = d;
    }
  }
  // Margin-based confidence: 1 when the runner-up is far, ~0 when tied.
  float confidence = 1.0f;
  if (second_dist < std::numeric_limits<float>::max() && second_dist > 0.0f) {
    confidence = 1.0f - best_dist / second_dist;
  }
  return {best, confidence};
}

CentroidBank::CentroidBank(std::size_t max_prototypes)
    : max_(max_prototypes == 0 ? 1 : max_prototypes) {}

CentroidBank::ObserveOutcome CentroidBank::observe(
    std::span<const float> features, Label label) {
  ObserveOutcome outcome;
  if (label == kNoLabel) return outcome;
  auto it = protos_.find(label);
  if (it == protos_.end()) {
    if (protos_.size() >= max_) {
      // Evict the weakest prototype; label-order iteration makes the tie
      // break (smallest label) deterministic.
      auto victim = protos_.begin();
      for (auto cand = protos_.begin(); cand != protos_.end(); ++cand) {
        if (cand->second.support < victim->second.support) victim = cand;
      }
      outcome.evicted = victim->first;
      protos_.erase(victim);
    }
    Prototype proto;
    proto.mean.assign(features.begin(), features.end());
    proto.support = 1;
    protos_.emplace(label, std::move(proto));
    outcome.updated = label;
    return outcome;
  }
  Prototype& proto = it->second;
  ++proto.support;
  const float w = 1.0f / static_cast<float>(proto.support);
  for (std::size_t i = 0; i < proto.mean.size(); ++i) {
    proto.mean[i] += (features[i] - proto.mean[i]) * w;
  }
  outcome.updated = label;
  return outcome;
}

const CentroidBank::Prototype* CentroidBank::find(Label label) const noexcept {
  const auto it = protos_.find(label);
  return it == protos_.end() ? nullptr : &it->second;
}

}  // namespace apx

#include "src/dnn/activation_cache.hpp"

#include <stdexcept>

namespace apx {

ActivationCache::ActivationCache(const MiniCnn::ForwardPlan& plan,
                                 const Params& params)
    : params_(params), shape1_(plan.stage1), shape2_(plan.stage2) {
  const int g = params.grid;
  if (g <= 0 || plan.input.width % g != 0 || plan.stage1.width % g != 0 ||
      plan.stage2.width % g != 0) {
    throw std::invalid_argument(
        "ActivationCache: grid must divide every stage side (2, 4 or 8)");
  }
  stage1_.resize(shape1_.size());
  stage2_.resize(shape2_.size());
  installed_.assign(static_cast<std::size_t>(block_count()), 0);
}

void ActivationCache::expire_blocks(SimTime now,
                                    std::span<std::uint8_t> out) const {
  if (out.size() != static_cast<std::size_t>(block_count())) {
    throw std::invalid_argument("ActivationCache: bad mask size");
  }
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = (valid_ && params_.ttl > 0 && now - installed_[b] > params_.ttl)
                 ? 1
                 : 0;
  }
}

void ActivationCache::install(const MiniCnn::Tensor& stage1,
                              const MiniCnn::Tensor& stage2,
                              std::span<const std::uint8_t> recomputed,
                              SimTime now) {
  if (stage1.size() != shape1_.size() || stage2.size() != shape2_.size() ||
      recomputed.size() != static_cast<std::size_t>(block_count())) {
    throw std::invalid_argument("ActivationCache: bad install");
  }
  const bool fresh = !valid_;
  stage1_ = stage1;  // copy-assignment reuses the fixed capacity
  stage2_ = stage2;
  for (std::size_t b = 0; b < recomputed.size(); ++b) {
    if (fresh || recomputed[b] != 0) installed_[b] = now;
  }
  valid_ = true;
}

void ActivationCache::block_to_pixel_mask(
    std::span<const std::uint8_t> blocks, int side,
    std::span<std::uint8_t> pixels) const {
  const int g = params_.grid;
  if (blocks.size() != static_cast<std::size_t>(block_count()) || side <= 0 ||
      side % g != 0 ||
      pixels.size() != static_cast<std::size_t>(side) * side) {
    throw std::invalid_argument("ActivationCache: bad pixel mask");
  }
  const int bs = side / g;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      pixels[static_cast<std::size_t>(y) * side + x] =
          blocks[static_cast<std::size_t>(y / bs) * g + (x / bs)];
    }
  }
}

}  // namespace apx

#pragma once
// Bounded cache of one keyframe's staged MiniCnn activations, tiled by a
// block grid (DESIGN.md §11). The region-reuse rung stores the stage-1 and
// stage-2 tensors of the last fully-forwarded frame here; partially-changed
// frames splice the unchanged blocks' tiles back into the forward pass and
// recompute only the changed ones. The footprint is fixed by construction
// (one stage-1 + one stage-2 tensor, DeepCache-style), so the cache cannot
// grow — "bounded" is structural, not a policy.
//
// Staleness is tracked per block: install() moves only the recomputed
// blocks' clocks forward, so a block that keeps being reused keeps the
// install time of the frame its pixels actually come from, and the ttl
// bounds how long any cached tile can influence an embedding.

#include <cstdint>
#include <span>
#include <vector>

#include "src/features/minicnn.hpp"
#include "src/util/clock.hpp"

namespace apx {

/// Per-device cache of the keyframe's stage-1/stage-2 activation tiles.
class ActivationCache {
 public:
  struct Params {
    int grid = 4;                   ///< blocks per side
    SimDuration ttl = 2 * kSecond;  ///< per-block staleness bound (0 = none)
  };

  /// Shapes come from MiniCnn::plan(). Throws std::invalid_argument when
  /// `grid` does not divide every stage side (the legal grids for the
  /// 32x32 input are 2, 4 and 8: a block must cover whole stage-2 pixels).
  ActivationCache(const MiniCnn::ForwardPlan& plan, const Params& params);

  bool valid() const noexcept { return valid_; }
  void invalidate() noexcept { valid_ = false; }

  int grid() const noexcept { return params_.grid; }
  int block_count() const noexcept { return params_.grid * params_.grid; }

  /// Resident activation bytes (fixed once constructed; the exported gauge).
  std::size_t bytes() const noexcept {
    return (stage1_.size() + stage2_.size()) * sizeof(float);
  }

  const MiniCnn::Tensor& stage1() const noexcept { return stage1_; }
  const MiniCnn::Tensor& stage2() const noexcept { return stage2_; }
  SimTime installed_at(int block) const noexcept {
    return installed_[static_cast<std::size_t>(block)];
  }

  /// Flags blocks whose tiles exceeded the ttl at `now` (row-major, 1 =
  /// expired) into `out` (block_count entries). No-op mask when ttl == 0 or
  /// the cache is invalid.
  void expire_blocks(SimTime now, std::span<std::uint8_t> out) const;

  /// Stores the complete stage tensors of the frame just forwarded.
  /// `recomputed` flags which blocks were recomputed this frame: only those
  /// blocks' install times move to `now` — reused blocks keep the time of
  /// the frame their pixels came from (see the staleness note above). The
  /// first install (or any install after invalidate()) treats every block
  /// as recomputed.
  void install(const MiniCnn::Tensor& stage1, const MiniCnn::Tensor& stage2,
               std::span<const std::uint8_t> recomputed, SimTime now);

  /// Expands a changed-block mask to a pixel mask at `side` x `side`
  /// resolution (side divisible by the grid; row-major, 1 = changed).
  void block_to_pixel_mask(std::span<const std::uint8_t> blocks, int side,
                           std::span<std::uint8_t> pixels) const;

 private:
  Params params_;
  MiniCnn::StageShape shape1_, shape2_;
  MiniCnn::Tensor stage1_, stage2_;
  std::vector<SimTime> installed_;  ///< per block
  bool valid_ = false;
};

}  // namespace apx

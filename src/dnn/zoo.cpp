#include "src/dnn/zoo.hpp"

namespace apx {

ModelProfile mobilenet_v2_profile() {
  ModelProfile p;
  p.name = "mobilenet_v2";
  p.mean_latency = 60 * kMillisecond;
  p.latency_jitter = 8 * kMillisecond;
  p.energy_mj = 120.0;
  p.top1_accuracy = 0.96;
  return p;
}

ModelProfile resnet50_profile() {
  ModelProfile p;
  p.name = "resnet50";
  p.mean_latency = 250 * kMillisecond;
  p.latency_jitter = 30 * kMillisecond;
  p.energy_mj = 480.0;
  p.top1_accuracy = 0.97;
  return p;
}

ModelProfile inception_v3_profile() {
  ModelProfile p;
  p.name = "inception_v3";
  p.mean_latency = 400 * kMillisecond;
  p.latency_jitter = 45 * kMillisecond;
  p.energy_mj = 760.0;
  p.top1_accuracy = 0.975;
  return p;
}

std::vector<ModelProfile> model_zoo() {
  return {mobilenet_v2_profile(), resnet50_profile(), inception_v3_profile()};
}

}  // namespace apx

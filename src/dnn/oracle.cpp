#include "src/dnn/oracle.hpp"

#include <algorithm>
#include <stdexcept>

namespace apx {

SimDuration sample_profile_latency(const ModelProfile& profile, Rng& rng) {
  const double mean = static_cast<double>(profile.mean_latency);
  const double jitter = static_cast<double>(profile.latency_jitter);
  double sample = rng.normal(mean, jitter);
  sample = std::clamp(sample, 0.8 * mean, 1.5 * mean);
  return static_cast<SimDuration>(sample);
}

namespace {

class OracleModel final : public RecognitionModel {
 public:
  OracleModel(const ModelProfile& profile, int num_classes, int group_size)
      : profile_(profile), num_classes_(num_classes), group_size_(group_size) {
    if (num_classes < 1 || group_size < 1) {
      throw std::invalid_argument("OracleModel: bad parameters");
    }
  }

  const std::string& name() const noexcept override { return profile_.name; }
  const ModelProfile& profile() const noexcept override { return profile_; }
  double energy_mj() const noexcept override { return profile_.energy_mj; }

  SimDuration sample_latency(Rng& rng) const override {
    return sample_profile_latency(profile_, rng);
  }

  Prediction infer(const Image& /*img*/, Label true_label,
                   Rng& rng) override {
    if (num_classes_ == 1 || rng.chance(profile_.top1_accuracy)) {
      return {true_label,
              static_cast<float>(rng.uniform(0.80, 0.99))};
    }
    return {wrong_label(true_label, rng),
            static_cast<float>(rng.uniform(0.40, 0.80))};
  }

 private:
  Label wrong_label(Label truth, Rng& rng) const {
    if (group_size_ > 1) {
      // Prefer an error within the truth's confusion group when it has one.
      const Label group_base = (truth / group_size_) * group_size_;
      const Label group_end =
          std::min(group_base + group_size_, num_classes_);
      const Label group_span = group_end - group_base;
      if (group_span > 1) {
        Label pick = group_base + static_cast<Label>(rng.uniform_u64(
                                      static_cast<std::uint64_t>(group_span)));
        if (pick == truth) pick = group_base + (pick - group_base + 1) % group_span;
        if (pick != truth) return pick;
      }
    }
    Label pick = static_cast<Label>(
        rng.uniform_u64(static_cast<std::uint64_t>(num_classes_)));
    if (pick == truth) pick = (pick + 1) % num_classes_;
    return pick;
  }

  ModelProfile profile_;
  int num_classes_;
  int group_size_;
};

}  // namespace

std::unique_ptr<RecognitionModel> make_oracle_model(const ModelProfile& profile,
                                                    int num_classes,
                                                    int confusion_group_size) {
  return std::make_unique<OracleModel>(profile, num_classes,
                                       confusion_group_size);
}

}  // namespace apx

#!/usr/bin/env bash
# Tier-1 flow plus sanitizer sweeps.
#
#   tools/check.sh            # tier-1: default build + full ctest
#                             # + release apxsim metrics-export smoke check
#   tools/check.sh sanitize   # + asan-ubsan over the whole suite
#                             # + tsan over the concurrency tests
#
# The tsan leg filters to the tests that exercise ThreadPool, the parallel
# simulation runner and pool-backed MiniCnn embedding — the code introduced
# by the hot-path overhaul that can actually race.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

# Metrics-export smoke check: run the release-preset driver on the full
# system, then validate the JSON shape against the checked-in schema.
cmake --preset release
cmake --build --preset release -j --target apxsim
metrics_json="build-release/metrics.json"
./build-release/tools/apxsim --config full --duration 15 --metrics \
  --metrics-out "$metrics_json" > /dev/null
if command -v python3 > /dev/null; then
  python3 -m json.tool "$metrics_json" > /dev/null
  python3 - "$metrics_json" tools/metrics_schema.json <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))
missing = [k for k in schema["top_level"] if k not in metrics]
assert not missing, f"missing top-level keys: {missing}"
assert metrics["schema"] == schema["schema"], metrics["schema"]
missing = [k for k in schema["required_counters"]
           if k not in metrics["counters"]]
assert not missing, f"missing counters: {missing}"
missing = [k for k in schema["required_histograms"]
           if k not in metrics["histograms"]]
assert not missing, f"missing histograms: {missing}"
for name, hist in metrics["histograms"].items():
    bad = [f for f in schema["histogram_fields"] if f not in hist]
    assert not bad, f"histogram {name} missing fields: {bad}"
    assert len(hist["buckets"]) == len(hist["bounds"]) + 1, name
    assert sum(hist["buckets"]) == hist["count"], name
print(f"metrics schema ok: {len(metrics['counters'])} counters, "
      f"{len(metrics['histograms'])} histograms")
PY
else
  echo "python3 not found; skipping metrics JSON schema validation" >&2
fi

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  ctest --preset asan-ubsan -j

  cmake --preset tsan
  cmake --build --preset tsan -j
  ./build-tsan/tests/hotpath_test \
    --gtest_filter='ThreadPoolTest.*:ParallelRunner.*:MiniCnnParallel.*'
fi
echo "check.sh: all green"

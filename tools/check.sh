#!/usr/bin/env bash
# Tier-1 flow plus sanitizer sweeps.
#
#   tools/check.sh            # tier-1: default build + full ctest
#   tools/check.sh sanitize   # + asan-ubsan over the whole suite
#                             # + tsan over the concurrency tests
#
# The tsan leg filters to the tests that exercise ThreadPool, the parallel
# simulation runner and pool-backed MiniCnn embedding — the code introduced
# by the hot-path overhaul that can actually race.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  ctest --preset asan-ubsan -j

  cmake --preset tsan
  cmake --build --preset tsan -j
  ./build-tsan/tests/hotpath_test \
    --gtest_filter='ThreadPoolTest.*:ParallelRunner.*:MiniCnnParallel.*'
fi
echo "check.sh: all green"

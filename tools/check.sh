#!/usr/bin/env bash
# Tier-1 flow plus sanitizer sweeps.
#
#   tools/check.sh            # tier-1: default build + full ctest
#                             # + release apxsim ladder-matrix smoke check
#                             #   (every preset + the warm-tier ladder,
#                             #    metrics schema validated per export)
#   tools/check.sh sanitize   # + asan-ubsan over the whole suite
#                             # + tsan over the concurrency tests
#
# The tsan leg covers the code that can actually race: ThreadPool, the
# parallel simulation runner, pool-backed MiniCnn embedding, and the
# concurrent shared-cache suite (readers vs writer over one ApproxCache).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

# Ladder-matrix smoke check: run the release-preset driver over every
# named preset plus the warm-tier ladder (2-device scenario), validating
# each JSON export against the checked-in schema. The `full` leg keeps the
# original longer duration as the primary metrics-export smoke check.
cmake --preset release
cmake --build --preset release -j --target apxsim

validate_metrics() {
  local metrics_json="$1"
  if ! command -v python3 > /dev/null; then
    echo "python3 not found; skipping metrics JSON schema validation" >&2
    return 0
  fi
  python3 -m json.tool "$metrics_json" > /dev/null
  python3 - "$metrics_json" tools/metrics_schema.json <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))
missing = [k for k in schema["top_level"] if k not in metrics]
assert not missing, f"missing top-level keys: {missing}"
assert metrics["schema"] == schema["schema"], metrics["schema"]
missing = [k for k in schema["required_counters"]
           if k not in metrics["counters"]]
assert not missing, f"missing counters: {missing}"
missing = [k for k in schema["required_histograms"]
           if k not in metrics["histograms"]]
assert not missing, f"missing histograms: {missing}"
# Subsystem groups (cache, p2p, warm rung) are all-or-nothing: absent for
# ladders without the subsystem, complete for ladders with it.
for name, group in schema.get("subsystems", {}).items():
    keys = [(metrics["counters"], k) for k in group.get("counters", [])]
    keys += [(metrics["histograms"], k) for k in group.get("histograms", [])]
    present = [k for where, k in keys if k in where]
    if present:
        partial = [k for where, k in keys if k not in where]
        assert not partial, f"subsystem {name} partially exported: {partial}"
for name, hist in metrics["histograms"].items():
    bad = [f for f in schema["histogram_fields"] if f not in hist]
    assert not bad, f"histogram {name} missing fields: {bad}"
    assert len(hist["buckets"]) == len(hist["bounds"]) + 1, name
    assert sum(hist["buckets"]) == hist["count"], name
print(f"metrics schema ok: {len(metrics['counters'])} counters, "
      f"{len(metrics['histograms'])} histograms")
PY
}

metrics_json="build-release/metrics.json"
./build-release/tools/apxsim --config full --duration 15 --metrics \
  --metrics-out "$metrics_json" > /dev/null
validate_metrics "$metrics_json"

for preset in nocache exact local imu video full adaptive; do
  echo "ladder matrix: --config $preset"
  ./build-release/tools/apxsim --config "$preset" --devices 2 --duration 10 \
    --metrics-out "build-release/metrics_${preset}.json" > /dev/null
  validate_metrics "build-release/metrics_${preset}.json"
done
echo "ladder matrix: --ladder imu,temporal,warm,local,p2p,dnn"
./build-release/tools/apxsim --ladder imu,temporal,warm,local,p2p,dnn \
  --devices 2 --duration 10 \
  --metrics-out build-release/metrics_warm.json > /dev/null
validate_metrics build-release/metrics_warm.json
# The warm rung must actually show up in its export.
grep -q 'pipeline/rung_us/warm' build-release/metrics_warm.json
echo "ladder matrix: --ladder imu,temporal,local(q8),p2p,dnn"
./build-release/tools/apxsim --ladder 'imu,temporal,local(q8),p2p,dnn' \
  --devices 2 --duration 10 \
  --metrics-out build-release/metrics_q8.json > /dev/null
validate_metrics build-release/metrics_q8.json
# The quantized subsystem must actually show up in its export.
grep -q 'cache/bytes_codes' build-release/metrics_q8.json
grep -q 'ann/rerank_survivors' build-release/metrics_q8.json
echo "ladder matrix: --ladder imu,temporal,local,p2p,edge(shards=2,ttl=20s),dnn"
./build-release/tools/apxsim \
  --ladder 'imu,temporal,local,p2p,edge(shards=2,ttl=20s),dnn' \
  --devices 2 --duration 10 \
  --metrics-out build-release/metrics_edge.json > /dev/null
validate_metrics build-release/metrics_edge.json
# The edge subsystem must actually show up in its export (all-or-nothing:
# validate_metrics has already checked the group is complete).
grep -q 'edge/srv_lookup' build-release/metrics_edge.json
grep -q 'edge/round_us' build-release/metrics_edge.json
echo "ladder matrix: --ladder imu,temporal,regions(grid=8,ttl=1s),local,p2p,dnn"
./build-release/tools/apxsim \
  --ladder 'imu,temporal,regions(grid=8,ttl=1s),local,p2p,dnn' \
  --devices 2 --duration 10 \
  --metrics-out build-release/metrics_regions.json > /dev/null
validate_metrics build-release/metrics_regions.json
# The regions subsystem must actually show up in its export (all-or-nothing:
# validate_metrics has already checked the group is complete).
grep -q 'regions/blocks_recomputed' build-release/metrics_regions.json
grep -q 'regions/splice_depth' build-release/metrics_regions.json
echo "ladder matrix: --ladder imu,temporal,local(qalsh),p2p,dnn"
./build-release/tools/apxsim \
  --ladder 'imu,temporal,local(qalsh),p2p,dnn' \
  --devices 2 --duration 10 \
  --metrics-out build-release/metrics_qalsh.json > /dev/null
validate_metrics build-release/metrics_qalsh.json
# The qalsh subsystem must actually show up in its export (all-or-nothing:
# validate_metrics has already checked the group is complete).
grep -q 'ann/qalsh/rounds' build-release/metrics_qalsh.json
grep -q 'ann/qalsh/c1_stop' build-release/metrics_qalsh.json

# M4 concurrent-bench smoke: a shrunk run of the shared-cache bench, its
# JSON validated against the committed BENCH_concurrent.json schema.
cmake --build --preset release -j --target bench_m4_concurrent
./build-release/bench/bench_m4_concurrent --smoke \
  build-release/BENCH_concurrent_smoke.json
python3 - build-release/BENCH_concurrent_smoke.json BENCH_concurrent.json <<'PY'
import json, sys
smoke = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
for doc, name in ((smoke, "smoke"), (committed, "committed")):
    for key in ("bench", "dim", "entries", "metrics", "extras"):
        assert key in doc, f"{name}: missing {key}"
    assert doc["bench"] == "m4_concurrent", doc["bench"]
    for metric, fields in doc["metrics"].items():
        for f in ("base_ns_op", "new_ns_op", "speedup"):
            assert f in fields, f"{name}: {metric} missing {f}"
        assert fields["new_ns_op"] > 0, f"{name}: {metric} empty measurement"
# The smoke run must produce the same metric/extra keys the committed
# exhibit carries (modulo nothing: schema drift fails the build).
assert set(smoke["metrics"]) == set(committed["metrics"]), (
    set(smoke["metrics"]) ^ set(committed["metrics"]))
assert set(smoke["extras"]) == set(committed["extras"]), (
    set(smoke["extras"]) ^ set(committed["extras"]))
print(f"bench_m4 schema ok: {len(smoke['metrics'])} metrics, "
      f"{len(smoke['extras'])} extras")
PY

# M5 regions-bench smoke: a shrunk run of the splice-vs-full sweep (the
# binary itself asserts bit-identity every iteration), its JSON validated
# against the committed BENCH_regions.json schema.
cmake --build --preset release -j --target bench_m5_regions
./build-release/bench/bench_m5_regions --smoke \
  build-release/BENCH_regions_smoke.json
python3 - build-release/BENCH_regions_smoke.json BENCH_regions.json <<'PY'
import json, sys
smoke = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
for doc, name in ((smoke, "smoke"), (committed, "committed")):
    for key in ("bench", "dim", "entries", "metrics", "extras"):
        assert key in doc, f"{name}: missing {key}"
    assert doc["bench"] == "m5_regions", doc["bench"]
    for metric, fields in doc["metrics"].items():
        for f in ("base_ns_op", "new_ns_op", "speedup"):
            assert f in fields, f"{name}: {metric} missing {f}"
        assert fields["new_ns_op"] > 0, f"{name}: {metric} empty measurement"
assert set(smoke["metrics"]) == set(committed["metrics"]), (
    set(smoke["metrics"]) ^ set(committed["metrics"]))
assert set(smoke["extras"]) == set(committed["extras"]), (
    set(smoke["extras"]) ^ set(committed["extras"]))
# The committed exhibit must carry the headline claim: every <=25%-changed
# point splices faster than full extraction.
slow = [m for m, f in committed["metrics"].items()
        if ("changed0pct" in m or "changed25pct" in m) and f["speedup"] <= 1.0]
assert not slow, f"committed exhibit lost the partial-hit win: {slow}"
print(f"bench_m5 schema ok: {len(smoke['metrics'])} metrics, "
      f"{len(smoke['extras'])} extras")
PY

if [[ "${1:-}" == "sanitize" ]]; then
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  ctest --preset asan-ubsan -j
  # The quantized parity suite in full, under both sanitizers — the SQ8
  # kernels and the code arena are the newest pointer arithmetic in the tree.
  ./build-asan-ubsan/tests/quantized_test
  # The region-reuse suite likewise: masked partial conv recomputation is
  # the newest indexing arithmetic (halo clipping, tile splicing).
  ./build-asan-ubsan/tests/regions_test
  # The QALSH suite in full: sorted-line cursor sweeps, pending-tail
  # merges, tombstone compaction and slot recycling are the newest
  # pointer/index arithmetic in src/ann.
  ./build-asan-ubsan/tests/qalsh_test

  cmake --preset tsan
  cmake --build --preset tsan -j
  ./build-tsan/tests/hotpath_test \
    --gtest_filter='ThreadPoolTest.*:ParallelRunner.*:MiniCnnParallel.*'
  # The shared-cache concurrency suite: batched readers vs writers over one
  # ApproxCache, plus the randomized concurrent fuzz schedules (includes
  # the EdgeConcurrent query/feed/sweep hammer on one EdgeCacheService and
  # the QALSH reader/writer suites over its sorted lines + pending tails).
  ./build-tsan/tests/concurrent_test
  ./build-tsan/tests/property_test \
    --gtest_filter='*ConcurrentBatchedReaders*'
  # The edge tier suite: sharded service + admission + TTL sweeps.
  ./build-tsan/tests/edge_test
  # A shrunk bench_m4 under tsan: real 32-thread contention on the shared
  # cache, with the sanitizer watching (the preset builds no benches, so
  # flip the switch for this one target).
  cmake --preset tsan -DAPX_BUILD_BENCH=ON
  cmake --build --preset tsan -j --target bench_m4_concurrent
  ./build-tsan/bench/bench_m4_concurrent --smoke \
    build-tsan/BENCH_concurrent_smoke.json
fi
echo "check.sh: all green"

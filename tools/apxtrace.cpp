// apxtrace — offline analyzer for recorded experiment traces (see
// sim/trace.hpp). Re-derives metrics from a trace file without
// re-simulating.
//
//   $ apxsim --duration 60 --trace-out run.aptr
//   $ apxtrace run.aptr                 # pooled summary
//   $ apxtrace run.aptr --device 2      # one device
//   $ apxtrace run.aptr --cdf           # latency CDF rows
//   $ apxtrace run.aptr --csv           # per-device CSV

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/sim/trace.hpp"
#include "src/util/serialize.hpp"
#include "src/util/table.hpp"

using namespace apx;

namespace {

std::vector<std::uint8_t> read_file(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "apxtrace: cannot open %s\n", path);
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void print_summary(const char* label, const ExperimentMetrics& m) {
  TextTable t;
  t.header({"metric", "value"});
  t.row({"frames", std::to_string(m.frames())});
  t.row({"mean latency", TextTable::num(m.mean_latency_ms()) + " ms"});
  t.row({"p50 / p95 / p99",
         TextTable::num(m.latency_quantile_ms(0.5)) + " / " +
             TextTable::num(m.latency_quantile_ms(0.95)) + " / " +
             TextTable::num(m.latency_quantile_ms(0.99)) + " ms"});
  t.row({"accuracy", TextTable::num(m.accuracy(), 4)});
  t.row({"reuse ratio", TextTable::num(m.reuse_ratio(), 4)});
  t.row({"energy/frame", TextTable::num(m.mean_compute_energy_mj(), 2) + " mJ"});
  std::printf("%s\n%s\nsource breakdown:\n", label, t.render().c_str());
  for (const auto& [source, count] : m.sources().items()) {
    std::printf("  %-13s %6llu (%.1f%%)\n", source.c_str(),
                static_cast<unsigned long long>(count),
                m.frames() ? 100.0 * static_cast<double>(count) /
                                 static_cast<double>(m.frames())
                           : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::puts("usage: apxtrace FILE [--device N | --cdf | --csv]");
    return argc < 2 ? 2 : 0;
  }
  std::vector<TraceEvent> events;
  try {
    events = TraceRecorder::parse(read_file(argv[1]));
  } catch (const CodecError& error) {
    std::fprintf(stderr, "apxtrace: malformed trace: %s\n", error.what());
    return 1;
  }

  std::set<std::uint32_t> device_ids;
  for (const TraceEvent& event : events) device_ids.insert(event.device);

  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode == "--device") {
    if (argc < 4) {
      std::fprintf(stderr, "apxtrace: --device needs an id\n");
      return 2;
    }
    const auto id = static_cast<std::uint32_t>(std::atoi(argv[3]));
    print_summary(("device " + std::to_string(id)).c_str(),
                  analyze_trace_device(events, id));
    return 0;
  }
  if (mode == "--cdf") {
    const ExperimentMetrics m = analyze_trace(events);
    std::printf("percentile,latency_ms\n");
    for (const int p : {1, 5, 10, 25, 50, 75, 90, 95, 99}) {
      std::printf("%d,%.3f\n", p, m.latency_quantile_ms(p / 100.0));
    }
    return 0;
  }
  if (mode == "--csv") {
    std::printf("device,frames,mean_ms,p95_ms,accuracy,reuse\n");
    for (const std::uint32_t id : device_ids) {
      const ExperimentMetrics m = analyze_trace_device(events, id);
      std::printf("%u,%zu,%.3f,%.3f,%.4f,%.4f\n", id, m.frames(),
                  m.mean_latency_ms(), m.latency_quantile_ms(0.95),
                  m.accuracy(), m.reuse_ratio());
    }
    return 0;
  }

  std::printf("trace: %zu events from %zu devices\n\n", events.size(),
              device_ids.size());
  print_summary("pooled", analyze_trace(events));
  return 0;
}

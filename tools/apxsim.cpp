// apxsim — command-line scenario driver. Runs any library scenario without
// writing code: pick a pipeline configuration, workload shape, model, and
// knobs; get the pooled metrics (human table or CSV row).
//
//   $ apxsim --config full --devices 6 --duration 90 --compare
//   $ apxsim --config adaptive --confusion 0.4 --csv
//
// Run with --help for every flag.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "src/obs/report.hpp"
#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;

struct Args {
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
};

void usage() {
  std::puts(
      "apxsim — approximate-caching scenario driver\n"
      "\n"
      "  --config NAME      nocache | exact | local | imu | video | full |\n"
      "                     adaptive | edge (default: full)\n"
      "  --ladder SPEC      explicit reuse-ladder composition instead of a\n"
      "                     preset: comma-separated rungs, cheapest first,\n"
      "                     ending in dnn. Rungs: imu temporal warm local\n"
      "                     exact p2p edge dnn; local(q8) scans the cache on\n"
      "                     SQ8 codes with exact re-rank; edge(...) takes\n"
      "                     shards= capacity= ttl= error_budget=. e.g.\n"
      "                       --ladder imu,temporal,local(q8),p2p,dnn\n"
      "                       --ladder 'imu,temporal,local,p2p,edge(shards=4,"
      "ttl=30s),dnn'\n"
      "  --devices N        co-located devices (default 4)\n"
      "  --duration S       simulated seconds (default 60)\n"
      "  --classes N        object classes (default 64)\n"
      "  --zipf S           popularity skew exponent (default 0.9)\n"
      "  --confusion F      class confusability 0..1 (default 0)\n"
      "  --model NAME       mobilenet | resnet50 | inception (default mobilenet)\n"
      "  --extractor NAME   downsample | histogram | hog | cnn (default cnn)\n"
      "  --eviction NAME    lru | lfu | utility (default utility)\n"
      "  --stationary F     mobility weight (default 0.4)\n"
      "  --minor F          mobility weight (default 0.4)\n"
      "  --major F          mobility weight (default 0.2)\n"
      "  --threshold F      H-kNN max distance (default: auto from the\n"
      "                     extractor's metric geometry)\n"
      "  --capacity N       cache entries per device (default 512)\n"
      "  --churn S          mean in/out-of-range period, seconds (default off)\n"
      "  --loss F           radio loss probability (default 0.01)\n"
      "  --faults SPEC      deterministic fault injection; comma-separated\n"
      "                     clauses, times in seconds:\n"
      "                       burst:LOSS[:MEANLEN]  Gilbert-Elliott burst loss\n"
      "                       spike:PROB:EXTRA_MS   delay spikes\n"
      "                       partition:MODE:START:DUR[:PERIOD]\n"
      "                                             MODE = split | full\n"
      "                       crash:MEAN_UP:DOWN    crash/restart cycle\n"
      "                       corrupt:PROB          in-flight corruption\n"
      "                     e.g. --faults burst:0.2:8,crash:30:5\n"
      "  --quantize-wire    ship features 8-bit quantized\n"
      "  --real-classifier  centroid classifier instead of the oracle\n"
      "  --seed N           RNG seed (default 1)\n"
      "  --compare          also run the no-cache baseline, print reduction\n"
      "  --csv              emit one CSV row (with header) instead of a table\n"
      "  --trace-out FILE   record a binary trace (analyze with apxtrace)\n"
      "  --metrics          print the per-rung latency breakdown and the\n"
      "                     full metrics registry summary\n"
      "  --metrics-out FILE write the metrics registry as JSON\n"
      "  --help             this text");
}

PipelineConfig config_by_name(const std::string& name, bool& ok) {
  ok = true;
  if (name == "nocache") return make_nocache_config();
  if (name == "exact") return make_exactcache_config();
  if (name == "local") return make_approx_local_config();
  if (name == "imu") return make_approx_imu_config();
  if (name == "video") return make_approx_video_config();
  if (name == "full") return make_full_system_config();
  if (name == "adaptive") return make_adaptive_config();
  if (name == "edge") return make_edge_config();
  ok = false;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      return 2;
    }
    key = key.substr(2);
    if (key == "help") {
      usage();
      return 0;
    }
    if (key == "quantize-wire" || key == "real-classifier" ||
        key == "compare" || key == "csv" || key == "metrics") {
      args.values[key] = "1";
    } else if (i + 1 < argc) {
      args.values[key] = argv[++i];
    } else {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return 2;
    }
  }

  if (args.has("config") && args.has("ladder")) {
    std::fprintf(stderr, "--config and --ladder are mutually exclusive\n");
    return 2;
  }
  ScenarioConfig cfg = default_scenario();
  std::string config_name = args.get("config", "full");
  if (args.has("ladder")) {
    const std::string spec = args.get("ladder", "");
    try {
      cfg.pipeline = make_ladder_config(spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad --ladder spec: %s\n", e.what());
      return 2;
    }
    // '+'-joined so the name stays a single CSV field.
    config_name = "ladder:" + spec;
    for (char& c : config_name) {
      if (c == ',') c = '+';
    }
  } else {
    bool config_ok = false;
    cfg.pipeline = config_by_name(config_name, config_ok);
    if (!config_ok) {
      std::fprintf(stderr, "unknown --config %s\n", config_name.c_str());
      return 2;
    }
  }

  cfg.num_devices = static_cast<int>(args.num("devices", 4));
  cfg.duration =
      static_cast<SimDuration>(args.num("duration", 60) * kSecond);
  cfg.scene.num_classes = static_cast<int>(args.num("classes", 64));
  cfg.zipf_s = args.num("zipf", 0.9);
  cfg.scene.class_confusion = static_cast<float>(args.num("confusion", 0.0));
  cfg.p_stationary = args.num("stationary", 0.4);
  cfg.p_minor = args.num("minor", 0.4);
  cfg.p_major = args.num("major", 0.2);
  if (args.has("threshold")) {
    cfg.auto_threshold = false;
    cfg.pipeline.cache.hknn.max_distance =
        static_cast<float>(args.num("threshold", 0.5));
  }
  cfg.pipeline.cache.capacity =
      static_cast<std::size_t>(args.num("capacity", 512));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  cfg.medium.loss_prob = args.num("loss", 0.01);
  if (args.has("faults")) {
    try {
      cfg.faults = parse_fault_spec(args.get("faults", ""));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
      return 2;
    }
  }
  cfg.peer.quantize_wire_features = args.has("quantize-wire");
  cfg.use_real_classifier = args.has("real-classifier");
  if (args.has("churn")) {
    cfg.churn_period =
        static_cast<SimDuration>(args.num("churn", 0) * kSecond);
  }
  const std::string trace_out = args.get("trace-out", "");
  cfg.record_trace = !trace_out.empty();

  const std::string model = args.get("model", "mobilenet");
  if (model == "mobilenet") {
    cfg.model = mobilenet_v2_profile();
  } else if (model == "resnet50") {
    cfg.model = resnet50_profile();
  } else if (model == "inception") {
    cfg.model = inception_v3_profile();
  } else {
    std::fprintf(stderr, "unknown --model %s\n", model.c_str());
    return 2;
  }

  const std::string extractor = args.get("extractor", "cnn");
  if (extractor == "downsample") {
    cfg.extractor = ExtractorKind::kDownsample;
  } else if (extractor == "histogram") {
    cfg.extractor = ExtractorKind::kHistogram;
  } else if (extractor == "hog") {
    cfg.extractor = ExtractorKind::kHog;
  } else if (extractor == "cnn") {
    cfg.extractor = ExtractorKind::kCnn;
  } else {
    std::fprintf(stderr, "unknown --extractor %s\n", extractor.c_str());
    return 2;
  }

  const std::string eviction = args.get("eviction", "utility");
  if (eviction == "lru") {
    cfg.eviction = EvictionKind::kLru;
  } else if (eviction == "lfu") {
    cfg.eviction = EvictionKind::kLfu;
  } else if (eviction == "utility") {
    cfg.eviction = EvictionKind::kUtility;
  } else {
    std::fprintf(stderr, "unknown --eviction %s\n", eviction.c_str());
    return 2;
  }

  double baseline_ms = 0.0;
  if (args.has("compare")) {
    ScenarioConfig base = cfg;
    base.pipeline = make_nocache_config();
    base.record_trace = false;
    baseline_ms = run_scenario(base).mean_latency_ms();
  }

  ExperimentRunner runner{cfg};
  const ExperimentMetrics m = runner.run();
  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out{metrics_out};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << runner.metrics().to_json() << '\n';
    std::fprintf(stderr, "metrics: %zu counters, %zu histograms -> %s\n",
                 runner.metrics().counter_count(),
                 runner.metrics().histogram_count(), metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const auto bytes = runner.trace().serialize();
    std::ofstream out{trace_out, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::fprintf(stderr, "trace: %zu events -> %s (%zu bytes)\n",
                 runner.trace().size(), trace_out.c_str(), bytes.size());
  }

  if (args.has("csv")) {
    std::printf(
        "config,devices,duration_s,classes,seed,frames,dropped,mean_ms,"
        "p50_ms,p95_ms,p99_ms,accuracy,reuse,energy_mj_per_frame,"
        "reduction_pct\n");
    std::printf("%s,%d,%.0f,%d,%llu,%zu,%zu,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f,"
                "%.2f,%.1f\n",
                config_name.c_str(), cfg.num_devices,
                to_seconds(cfg.duration), cfg.scene.num_classes,
                static_cast<unsigned long long>(cfg.seed), m.frames(),
                m.dropped(), m.mean_latency_ms(), m.latency_quantile_ms(0.5),
                m.latency_quantile_ms(0.95), m.latency_quantile_ms(0.99),
                m.accuracy(), m.reuse_ratio(), m.mean_total_energy_mj(),
                baseline_ms > 0 ? m.reduction_vs_percent(baseline_ms) : 0.0);
    return 0;
  }

  std::printf("scenario: %s, %d devices, %.0f s, %d classes (seed %llu)\n\n",
              config_name.c_str(), cfg.num_devices, to_seconds(cfg.duration),
              cfg.scene.num_classes,
              static_cast<unsigned long long>(cfg.seed));
  TextTable table;
  table.header({"metric", "value"});
  table.row({"frames", std::to_string(m.frames())});
  table.row({"dropped", std::to_string(m.dropped())});
  table.row({"mean latency", TextTable::num(m.mean_latency_ms()) + " ms"});
  table.row({"p95 latency",
             TextTable::num(m.latency_quantile_ms(0.95)) + " ms"});
  table.row({"accuracy", TextTable::num(m.accuracy(), 4)});
  table.row({"reuse ratio", TextTable::num(m.reuse_ratio(), 4)});
  table.row({"energy/frame",
             TextTable::num(m.mean_total_energy_mj(), 2) + " mJ"});
  if (baseline_ms > 0) {
    table.row({"reduction vs no-cache",
               TextTable::num(m.reduction_vs_percent(baseline_ms), 1) + "%"});
  }
  std::printf("%s\nsource breakdown:\n", table.render().c_str());
  for (const auto& [source, count] : m.sources().items()) {
    std::printf("  %-13s %6llu (%.1f%%)\n", source.c_str(),
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(m.frames()));
  }
  if (args.has("metrics")) {
    const std::string rungs = per_rung_summary(runner.metrics());
    if (!rungs.empty()) {
      std::printf("\nper-rung breakdown:\n%s", rungs.c_str());
    }
    std::printf("\nmetrics registry:\n%s", runner.metrics().summary().c_str());
  }
  return 0;
}
